// Package verbs models an RDMA HCA ("RNIC") over the mlx driver: queue
// pairs with the mandatory RESET→INIT→RTR→RTS state machine, work queues
// in simulated user memory, doorbell-triggered processing on the engine's
// virtual clock, and SEND/RECV plus RDMA WRITE/READ whose payloads move
// page-by-page through real MTT lookups between the nodes' physical
// memories. The control path (QP creation, state transitions, memory
// registration) runs through the driver's ioctls — that is the part the
// paper's §6 future work ports to the LWK — while the data path
// (doorbell, WQE fetch, DMA, CQE) never enters any kernel.
package verbs

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/mem"
	"repro/internal/mlx"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ring is one work or completion queue: contiguous, DMA-visible kernel
// memory holding fixed-stride entries.
type ring struct {
	ext     mem.Extent
	entries uint32
	stride  uint32
}

func (r ring) slot(i uint32) mem.PhysAddr {
	return r.ext.Addr + mem.PhysAddr((i%r.entries)*r.stride)
}

// pendingWR is an initiated SQ work request awaiting its ack, nak or
// read response.
type pendingWR struct {
	wrid   uint64
	opcode uint32
	bytes  uint64
	begin  time.Duration
	// lkey/laddr are the scatter target of an outstanding RDMA READ.
	lkey  uint32
	laddr uint64
}

// msgKey identifies an inbound message stream across any-source QPs.
type msgKey struct {
	node  int
	qpn   uint32
	msgID uint64
}

// recvState tracks an in-progress inbound SEND being scattered into a
// consumed RQ WQE.
type recvState struct {
	key   msgKey
	wrid  uint64
	lkey  uint32
	laddr uint64
	begin time.Duration
}

// hwQP is the HCA-side queue pair state.
type hwQP struct {
	qpn        uint32
	state      uint32
	anySource  bool
	remoteNode int
	remoteQPN  uint32

	sq, rq, cq ring
	db         mem.Extent

	sqHead, sqTail uint32 // consumer / producer-shadow
	rqHead, rqTail uint32
	cqProd         uint32

	scheduled  bool
	doorbellAt time.Duration
	nextMsg    uint64
	pending    map[uint64]*pendingWR
	discard    map[msgKey]bool
	cur        *recvState
}

// RNIC is one node's HCA. All processing happens on two engine daemons
// (WQE scheduler and receive pipeline), so completions on one node are
// totally ordered and runs are deterministic.
type RNIC struct {
	e     *sim.Engine
	pr    *model.Params
	node  int
	phys  *mem.PhysMem
	fab   *fabric.Fabric
	space *kmem.Space // Linux kernel memory: QP rings live here
	// Synthetic skips payload byte copies (large-scale runs); MTT
	// translation, bounds checks and completion flow stay real.
	synthetic bool

	qps     map[uint32]*hwQP
	nextQPN uint32
	keys    map[uint32]mlx.MRHandle

	sched *sim.Queue[*hwQP]
	rxq   *sim.Queue[*fabric.Packet]
	// Notify wakes userspace CQ pollers (the simulated analog of a
	// completion-channel-free busy poll noticing new CQEs).
	Notify *sim.Cond

	// trackName is the cached span-track label ("rnic<node>").
	trackName string

	// Counters (consumed by simtest digests and invariants).
	Doorbells uint64
	WQEs      uint64
	DMAChunks uint64
	CQEs      uint64
	ErrCQEs   uint64
	RxPackets uint64
}

// NewRNIC attaches a node's HCA to the InfiniBand fabric and starts its
// processing daemons.
func NewRNIC(e *sim.Engine, pr *model.Params, node int, phys *mem.PhysMem,
	fab *fabric.Fabric, space *kmem.Space, synthetic bool) (*RNIC, error) {
	r := &RNIC{
		e: e, pr: pr, node: node, phys: phys, fab: fab, space: space,
		synthetic: synthetic,
		qps:       make(map[uint32]*hwQP),
		nextQPN:   1,
		keys:      make(map[uint32]mlx.MRHandle),
		sched:     sim.NewQueue[*hwQP](e),
		rxq:       sim.NewQueue[*fabric.Packet](e),
		Notify:    sim.NewCond(e),
		trackName: fmt.Sprintf("rnic%d", node),
	}
	if _, err := fab.Attach(node, func(pkt *fabric.Packet) { r.rxq.Push(pkt) }); err != nil {
		return nil, err
	}
	e.GoDaemon(fmt.Sprintf("rnic%d/sched", node), r.runSched)
	e.GoDaemon(fmt.Sprintf("rnic%d/rx", node), r.runRx)
	return r, nil
}

// track names this HCA's span track.
func (r *RNIC) track() string { return r.trackName }

// LiveQPs counts QPs not yet destroyed.
func (r *RNIC) LiveQPs() int { return len(r.qps) }

// KeysLive counts programmed (not invalidated) memory keys.
func (r *RNIC) KeysLive() int { return len(r.keys) }

// ---- Control path (mlx.QPEngine / mlx.MRTable) ----

var _ mlx.QPEngine = (*RNIC)(nil)
var _ mlx.MRTable = (*RNIC)(nil)

// ProgramKey installs a memory key (driver → HCA at registration time).
func (r *RNIC) ProgramKey(lkey uint32, h mlx.MRHandle) { r.keys[lkey] = h }

// InvalidateKey removes a memory key at deregistration.
func (r *RNIC) InvalidateKey(lkey uint32) { delete(r.keys, lkey) }

// CreateQP allocates the QP and its rings in Linux kernel memory. The
// geometry is taken as given (the user library fills defaults); the CQ
// must hold one completion per possible outstanding WQE so it can never
// overflow.
func (r *RNIC) CreateQP(ctx *kernel.Ctx, info *mlx.QPInfo) (uint32, error) {
	if info.SQEntries == 0 || info.RQEntries == 0 {
		return 0, fmt.Errorf("verbs: zero-sized work queue")
	}
	if info.CQEntries < info.SQEntries+info.RQEntries {
		return 0, fmt.Errorf("verbs: CQ %d entries cannot cover SQ %d + RQ %d",
			info.CQEntries, info.SQEntries, info.RQEntries)
	}
	alloc := func(entries, stride uint32) (ring, error) {
		bytes := (uint64(entries)*uint64(stride) + mem.PageSize4K - 1) &^ uint64(mem.PageSize4K-1)
		ext, err := r.space.Alloc.AllocContig(bytes, mem.PreferMCDRAM)
		if err != nil {
			return ring{}, err
		}
		return ring{ext: ext, entries: entries, stride: stride}, nil
	}
	sq, err := alloc(info.SQEntries, WQESize)
	if err != nil {
		return 0, err
	}
	rq, err := alloc(info.RQEntries, WQESize)
	if err != nil {
		r.space.Alloc.FreeContig(sq.ext)
		return 0, err
	}
	cq, err := alloc(info.CQEntries, CQESize)
	if err != nil {
		r.space.Alloc.FreeContig(sq.ext)
		r.space.Alloc.FreeContig(rq.ext)
		return 0, err
	}
	db, err := r.space.Alloc.AllocContig(uint64(mem.PageSize4K), mem.PreferMCDRAM)
	if err != nil {
		r.space.Alloc.FreeContig(sq.ext)
		r.space.Alloc.FreeContig(rq.ext)
		r.space.Alloc.FreeContig(cq.ext)
		return 0, err
	}
	qpn := r.nextQPN
	r.nextQPN++
	r.qps[qpn] = &hwQP{
		qpn: qpn, state: mlx.QPStateReset,
		sq: sq, rq: rq, cq: cq, db: db,
		pending: make(map[uint64]*pendingWR),
		discard: make(map[msgKey]bool),
	}
	// Ring init: zero-fill is implicit (fresh frames), but the HCA pays
	// for context setup per ring.
	ctx.Spend(3 * time.Microsecond)
	return qpn, nil
}

// ModifyQP advances the state machine; out-of-order transitions are
// rejected exactly like real verbs.
func (r *RNIC) ModifyQP(ctx *kernel.Ctx, qpn uint32, info *mlx.QPInfo) error {
	qp, ok := r.qps[qpn]
	if !ok {
		return fmt.Errorf("verbs: modify of unknown QP %d", qpn)
	}
	switch {
	case qp.state == mlx.QPStateReset && info.State == mlx.QPStateInit:
		qp.state = mlx.QPStateInit
	case qp.state == mlx.QPStateInit && info.State == mlx.QPStateRTR:
		qp.state = mlx.QPStateRTR
		if info.Flags&mlx.QPFlagAnySource != 0 {
			qp.anySource = true
		} else {
			qp.remoteNode = int(info.RemoteNode)
			qp.remoteQPN = info.RemoteQPN
		}
	case qp.state == mlx.QPStateRTR && info.State == mlx.QPStateRTS:
		qp.state = mlx.QPStateRTS
	default:
		return fmt.Errorf("verbs: invalid QP %d transition %d→%d", qpn, qp.state, info.State)
	}
	ctx.Spend(1 * time.Microsecond)
	return nil
}

// DestroyQP frees the QP's ring memory.
func (r *RNIC) DestroyQP(ctx *kernel.Ctx, qpn uint32) error {
	qp, ok := r.qps[qpn]
	if !ok {
		return fmt.Errorf("verbs: destroy of unknown QP %d", qpn)
	}
	r.space.Alloc.FreeContig(qp.sq.ext)
	r.space.Alloc.FreeContig(qp.rq.ext)
	r.space.Alloc.FreeContig(qp.cq.ext)
	r.space.Alloc.FreeContig(qp.db)
	delete(r.qps, qpn)
	ctx.Spend(2 * time.Microsecond)
	return nil
}

// Region exposes one QP ring for mmap.
func (r *RNIC) Region(qpn, region uint32) (mem.Extent, error) {
	qp, ok := r.qps[qpn]
	if !ok {
		return mem.Extent{}, fmt.Errorf("verbs: mmap of unknown QP %d", qpn)
	}
	switch region {
	case mlx.MmapSQ:
		return qp.sq.ext, nil
	case mlx.MmapRQ:
		return qp.rq.ext, nil
	case mlx.MmapCQ:
		return qp.cq.ext, nil
	case mlx.MmapDB:
		return qp.db, nil
	}
	return mem.Extent{}, fmt.Errorf("verbs: unknown mmap region %d", region)
}

// ---- Data path ----

// RingDoorbell is the userspace MMIO store that kicks the HCA: it reads
// the producer tails from the doorbell page and schedules the QP. This
// is the entire submit cost of the kernel-bypass path — no syscall.
func (r *RNIC) RingDoorbell(p *sim.Proc, qpn uint32) error {
	p.Sleep(r.pr.VerbsDoorbell)
	qp, ok := r.qps[qpn]
	if !ok {
		return fmt.Errorf("verbs: doorbell on unknown QP %d", qpn)
	}
	r.Doorbells++
	sqTail, err := r.phys.ReadU64(qp.db.Addr + dbSQTail)
	if err != nil {
		return err
	}
	rqTail, err := r.phys.ReadU64(qp.db.Addr + dbRQTail)
	if err != nil {
		return err
	}
	qp.sqTail = uint32(sqTail)
	qp.rqTail = uint32(rqTail)
	if qp.sqHead != qp.sqTail && !qp.scheduled {
		qp.scheduled = true
		qp.doorbellAt = p.Now()
		r.sched.Push(qp)
	}
	return nil
}

// runSched drains doorbelled QPs: fetch each new WQE by DMA and execute
// it. A single scheduler daemon serializes WQE execution per HCA.
func (r *RNIC) runSched(p *sim.Proc) {
	for {
		qp := r.sched.Pop(p)
		r.e.Recorder().Span(trace.CatVerbs, "doorbell", r.track(), qp.doorbellAt, p.Now())
		for qp.sqHead != qp.sqTail {
			var b [WQESize]byte
			if err := r.phys.ReadAt(qp.sq.slot(qp.sqHead), b[:]); err != nil {
				r.e.Fail(err)
				return
			}
			p.Sleep(r.pr.VerbsWQEFetch)
			wqe := DecodeWQE(b[:])
			r.WQEs++
			r.execWQE(p, qp, &wqe)
			qp.sqHead++
			if err := r.phys.WriteU64(qp.db.Addr+dbSQCons, uint64(qp.sqHead)); err != nil {
				r.e.Fail(err)
				return
			}
		}
		qp.scheduled = false
	}
}

// execWQE runs one send-queue work request.
func (r *RNIC) execWQE(p *sim.Proc, qp *hwQP, w *WQE) {
	begin := p.Now()
	if qp.state != mlx.QPStateRTS || qp.anySource {
		// Not ready to send — including any-source QPs, which are pure
		// targets with no remote binding to address.
		r.writeCQE(p, qp, w.WRID, StatusLocalQPErr, w.Opcode, 0, begin)
		return
	}
	h, ok := r.keys[w.LKey]
	if !ok || w.LAddr < h.IOVA || w.LAddr+w.Len > h.IOVA+h.Length {
		r.writeCQE(p, qp, w.WRID, StatusLocalProt, w.Opcode, 0, begin)
		return
	}
	if w.Opcode == OpcodeRead && h.Access&mlx.AccessLocalWrite == 0 {
		r.writeCQE(p, qp, w.WRID, StatusLocalProt, w.Opcode, 0, begin)
		return
	}
	msgID := qp.nextMsg
	qp.nextMsg++
	pd := &pendingWR{wrid: w.WRID, opcode: w.Opcode, bytes: w.Len, begin: begin,
		lkey: w.LKey, laddr: w.LAddr}
	qp.pending[msgID] = pd

	switch w.Opcode {
	case OpcodeSend, OpcodeWrite:
		dmaBegin := p.Now()
		r.streamOut(p, qp.remoteNode, qp.remoteQPN, qp.qpn, w.Opcode, msgID, h, w)
		r.e.Recorder().SpanBytes(trace.CatVerbs, "dma", r.track(), dmaBegin, p.Now(), w.Len)
	case OpcodeRead:
		pkt := r.fab.GetPacket()
		*pkt = fabric.Packet{
			SrcNode: r.node, DstNode: qp.remoteNode, DstCtx: int(qp.remoteQPN),
			Kind: fabric.KindRDMA,
			Hdr: fabric.Header{Op: OpcodeRead, SrcRank: qp.qpn, Tag: w.RAddr,
				Aux: uint64(w.RKey), MsgID: msgID, MsgLen: w.Len},
			Last: true, Pooled: true,
		}
		if err := r.fab.Send(p, pkt); err != nil {
			r.e.Fail(err)
		}
	default:
		delete(qp.pending, msgID)
		r.writeCQE(p, qp, w.WRID, StatusLocalProt, w.Opcode, 0, begin)
	}
}

// streamOut segments one SEND/WRITE message into MTU packets, gathering
// payload through the local MTT.
func (r *RNIC) streamOut(p *sim.Proc, dstNode int, dstQPN, srcQPN, op uint32,
	msgID uint64, h mlx.MRHandle, w *WQE) {
	off := uint64(0)
	for {
		n := w.Len - off
		if n > r.pr.VerbsMTU {
			n = r.pr.VerbsMTU
		}
		last := off+n == w.Len
		var payload []byte
		if !r.synthetic && n > 0 {
			payload = r.fab.GetBuf(int(n))
			if err := r.dmaAccess(p, h, w.LAddr-h.IOVA+off, payload, false); err != nil {
				r.e.Fail(err)
				return
			}
		} else if n > 0 {
			// Synthetic: pay the translation cost, skip the copy.
			if err := r.dmaAccess(p, h, w.LAddr-h.IOVA+off, nil, false); err != nil {
				r.e.Fail(err)
				return
			}
		}
		pkt := r.fab.GetPacket()
		*pkt = fabric.Packet{
			SrcNode: r.node, DstNode: dstNode, DstCtx: int(dstQPN),
			Kind: fabric.KindRDMA,
			Hdr: fabric.Header{Op: op, SrcRank: srcQPN, Tag: w.RAddr,
				Aux: uint64(w.RKey), MsgID: msgID, MsgLen: w.Len, Offset: off},
			Payload: payload, Bytes: n, Last: last,
			Pooled:  true, PooledPayload: payload != nil,
		}
		if err := r.fab.Send(p, pkt); err != nil {
			r.e.Fail(err)
			return
		}
		off += n
		if last {
			break
		}
	}
}

// dmaAccess walks the MTT to translate [off, off+len(buf)) of the MR and
// copies between the physical pages and buf (read or write). A nil buf
// with synthetic mode still pays the per-entry translation cost via
// length tracking: callers pass nil only when bytes are elided.
func (r *RNIC) dmaAccess(p *sim.Proc, h mlx.MRHandle, off uint64, buf []byte, write bool) error {
	want := uint64(len(buf))
	if buf == nil {
		// Synthetic transfers still resolve one chunk per MTU packet.
		want = 0
	}
	pos := uint64(0) // consumed bytes of buf
	base := uint64(0)
	for i := uint64(0); i < h.Entries; i++ {
		entry, err := h.Space.ReadU64(h.MTTVA + kmem.VirtAddr(i*8))
		if err != nil {
			return err
		}
		pa, size, present := mlx.DecodeMTTEntry(entry)
		if !present {
			return fmt.Errorf("verbs: non-present MTT entry %d", i)
		}
		if base+size <= off {
			base += size
			continue
		}
		p.Sleep(r.pr.VerbsMTTLookup)
		r.DMAChunks++
		if buf == nil {
			return nil // translation only
		}
		skip := off + pos - base
		n := size - skip
		if n > want-pos {
			n = want - pos
		}
		var err2 error
		if write {
			err2 = r.phys.WriteAt(pa+mem.PhysAddr(skip), buf[pos:pos+n])
		} else {
			err2 = r.phys.ReadAt(pa+mem.PhysAddr(skip), buf[pos:pos+n])
		}
		if err2 != nil {
			return err2
		}
		pos += n
		base += size
		if pos == want {
			return nil
		}
	}
	if buf == nil {
		return nil
	}
	return fmt.Errorf("verbs: MTT walk ran past the table (off %d, want %d)", off, want)
}

// runRx is the receive pipeline: validates inbound requests against the
// key table, scatters payloads through the MTT and emits acks, naks and
// completions.
func (r *RNIC) runRx(p *sim.Proc) {
	for {
		pkt := r.rxq.Pop(p)
		p.Sleep(r.pr.RcvPacketCost)
		r.RxPackets++
		switch pkt.Hdr.Op {
		case OpcodeWrite:
			r.rxWrite(p, pkt)
		case OpcodeSend:
			r.rxSend(p, pkt)
		case OpcodeRead:
			r.rxRead(p, pkt)
		case opReadResp:
			r.rxReadResp(p, pkt)
		case opAck:
			r.complete(p, pkt, StatusOK)
		case opNak:
			r.complete(p, pkt, uint32(pkt.Hdr.Aux))
		default:
			r.e.Fail(fmt.Errorf("verbs: unknown wire opcode %d", pkt.Hdr.Op))
			return
		}
		// Every handler consumes the packet synchronously (payload bytes
		// are DMA'd before return), so it can go back to the pool here.
		r.fab.Release(pkt)
	}
}

// reply sends an ack/nak (or read response) back to the initiator.
func (r *RNIC) reply(p *sim.Proc, pkt *fabric.Packet, op, status uint32) {
	out := r.fab.GetPacket()
	*out = fabric.Packet{
		SrcNode: r.node, DstNode: pkt.SrcNode, DstCtx: int(pkt.Hdr.SrcRank),
		Kind: fabric.KindRDMA,
		Hdr: fabric.Header{Op: op, SrcRank: uint32(pkt.DstCtx),
			MsgID: pkt.Hdr.MsgID, Aux: uint64(status)},
		Last: true, Pooled: true,
	}
	if err := r.fab.Send(p, out); err != nil {
		r.e.Fail(err)
	}
}

// inKey identifies pkt's message stream for discard tracking.
func inKey(pkt *fabric.Packet) msgKey {
	return msgKey{node: pkt.SrcNode, qpn: pkt.Hdr.SrcRank, msgID: pkt.Hdr.MsgID}
}

// rxTarget resolves and admission-checks the destination QP of an
// inbound request; a nil return means the packet was nak'd or dropped.
func (r *RNIC) rxTarget(p *sim.Proc, pkt *fabric.Packet, needConnected bool) *hwQP {
	qp, ok := r.qps[uint32(pkt.DstCtx)]
	if !ok || qp.state < mlx.QPStateRTR {
		if pkt.Hdr.Offset == 0 {
			r.reply(p, pkt, opNak, StatusRemoteInvalid)
		}
		return nil
	}
	if qp.discard[inKey(pkt)] {
		if pkt.Last {
			delete(qp.discard, inKey(pkt))
		}
		return nil
	}
	wrongFlavor := needConnected && qp.anySource
	wrongPeer := !qp.anySource &&
		(pkt.SrcNode != qp.remoteNode || pkt.Hdr.SrcRank != qp.remoteQPN)
	if wrongFlavor || wrongPeer {
		r.nakAndDiscard(p, qp, pkt, StatusRemoteInvalid)
		return nil
	}
	return qp
}

// nakAndDiscard rejects a message's first packet and arranges for the
// rest of its packets to be dropped silently.
func (r *RNIC) nakAndDiscard(p *sim.Proc, qp *hwQP, pkt *fabric.Packet, status uint32) {
	if pkt.Hdr.Offset != 0 {
		return // already nak'd at offset 0
	}
	r.reply(p, pkt, opNak, status)
	if !pkt.Last {
		qp.discard[inKey(pkt)] = true
	}
}

// checkRemote validates an rkey'd span for an inbound WRITE or READ.
func (r *RNIC) checkRemote(pkt *fabric.Packet, need uint32) (mlx.MRHandle, uint32) {
	h, ok := r.keys[uint32(pkt.Hdr.Aux)]
	if !ok {
		return h, StatusRemoteInvalid
	}
	if h.Access&mlxAccess(need) == 0 {
		return h, StatusRemoteAccess
	}
	raddr, length := pkt.Hdr.Tag, pkt.Hdr.MsgLen
	if raddr < h.IOVA || raddr+length > h.IOVA+h.Length {
		return h, StatusRemoteAccess
	}
	return h, StatusOK
}

// mlxAccess maps a wire opcode to the required MR access bit.
func mlxAccess(op uint32) uint32 {
	if op == OpcodeRead {
		return mlx.AccessRemoteRead
	}
	return mlx.AccessRemoteWrite
}

func (r *RNIC) rxWrite(p *sim.Proc, pkt *fabric.Packet) {
	qp := r.rxTarget(p, pkt, false)
	if qp == nil {
		return
	}
	h, st := r.checkRemote(pkt, OpcodeWrite)
	if st != StatusOK {
		r.nakAndDiscard(p, qp, pkt, st)
		return
	}
	if !r.synthetic && pkt.Bytes > 0 {
		if err := r.dmaAccess(p, h, pkt.Hdr.Tag-h.IOVA+pkt.Hdr.Offset, pkt.Payload, true); err != nil {
			r.e.Fail(err)
			return
		}
	} else if pkt.Bytes > 0 {
		if err := r.dmaAccess(p, h, pkt.Hdr.Tag-h.IOVA+pkt.Hdr.Offset, nil, true); err != nil {
			r.e.Fail(err)
			return
		}
	}
	if pkt.Last {
		r.reply(p, pkt, opAck, StatusOK)
	}
}

func (r *RNIC) rxSend(p *sim.Proc, pkt *fabric.Packet) {
	qp := r.rxTarget(p, pkt, true)
	if qp == nil {
		return
	}
	if pkt.Hdr.Offset == 0 {
		if qp.rqHead == qp.rqTail {
			// Receiver not ready: no posted RQ WQE.
			r.nakAndDiscard(p, qp, pkt, StatusRNR)
			return
		}
		var b [WQESize]byte
		if err := r.phys.ReadAt(qp.rq.slot(qp.rqHead), b[:]); err != nil {
			r.e.Fail(err)
			return
		}
		p.Sleep(r.pr.VerbsWQEFetch)
		rwqe := DecodeWQE(b[:])
		qp.rqHead++
		if err := r.phys.WriteU64(qp.db.Addr+dbRQCons, uint64(qp.rqHead)); err != nil {
			r.e.Fail(err)
			return
		}
		r.WQEs++
		h, ok := r.keys[rwqe.LKey]
		if !ok || h.Access&mlx.AccessLocalWrite == 0 ||
			rwqe.LAddr < h.IOVA || rwqe.LAddr+rwqe.Len > h.IOVA+h.Length {
			r.writeCQE(p, qp, rwqe.WRID, StatusLocalProt, OpcodeRecv, 0, p.Now())
			r.nakAndDiscard(p, qp, pkt, StatusRemoteInvalid)
			return
		}
		if pkt.Hdr.MsgLen > rwqe.Len {
			// Message overruns the posted buffer: local length error on
			// the receiver, remote-invalid nak to the sender.
			r.writeCQE(p, qp, rwqe.WRID, StatusLocalLen, OpcodeRecv, pkt.Hdr.MsgLen, p.Now())
			r.nakAndDiscard(p, qp, pkt, StatusRemoteInvalid)
			return
		}
		qp.cur = &recvState{key: inKey(pkt), wrid: rwqe.WRID, lkey: rwqe.LKey,
			laddr: rwqe.LAddr, begin: p.Now()}
	}
	cur := qp.cur
	if cur == nil || cur.key != inKey(pkt) {
		// Interleaved SENDs can only happen on a misused QP; reject.
		r.nakAndDiscard(p, qp, pkt, StatusRemoteInvalid)
		return
	}
	if pkt.Bytes > 0 {
		h := r.keys[cur.lkey]
		buf := pkt.Payload
		if r.synthetic {
			buf = nil
		}
		if err := r.dmaAccess(p, h, cur.laddr-h.IOVA+pkt.Hdr.Offset, buf, true); err != nil {
			r.e.Fail(err)
			return
		}
	}
	if pkt.Last {
		qp.cur = nil
		r.writeCQE(p, qp, cur.wrid, StatusOK, OpcodeRecv, pkt.Hdr.MsgLen, cur.begin)
		r.reply(p, pkt, opAck, StatusOK)
	}
}

func (r *RNIC) rxRead(p *sim.Proc, pkt *fabric.Packet) {
	qp := r.rxTarget(p, pkt, false)
	if qp == nil {
		return
	}
	h, st := r.checkRemote(pkt, OpcodeRead)
	if st != StatusOK {
		r.nakAndDiscard(p, qp, pkt, st)
		return
	}
	// Stream the response from the target MR back to the requester.
	dmaBegin := p.Now()
	w := &WQE{LAddr: pkt.Hdr.Tag, Len: pkt.Hdr.MsgLen, RKey: uint32(pkt.Hdr.Aux)}
	r.streamOut(p, pkt.SrcNode, pkt.Hdr.SrcRank, uint32(pkt.DstCtx), opReadResp,
		pkt.Hdr.MsgID, h, w)
	r.e.Recorder().SpanBytes(trace.CatVerbs, "dma", r.track(), dmaBegin, p.Now(), pkt.Hdr.MsgLen)
}

func (r *RNIC) rxReadResp(p *sim.Proc, pkt *fabric.Packet) {
	qp, ok := r.qps[uint32(pkt.DstCtx)]
	if !ok {
		return
	}
	pd, ok := qp.pending[pkt.Hdr.MsgID]
	if !ok {
		return
	}
	if pkt.Bytes > 0 {
		h := r.keys[pd.lkey]
		buf := pkt.Payload
		if r.synthetic {
			buf = nil
		}
		if err := r.dmaAccess(p, h, pd.laddr-h.IOVA+pkt.Hdr.Offset, buf, true); err != nil {
			r.e.Fail(err)
			return
		}
	}
	if pkt.Last {
		delete(qp.pending, pkt.Hdr.MsgID)
		r.writeCQE(p, qp, pd.wrid, StatusOK, pd.opcode, pd.bytes, pd.begin)
	}
}

// complete resolves an ack/nak against the initiator's pending table.
func (r *RNIC) complete(p *sim.Proc, pkt *fabric.Packet, status uint32) {
	qp, ok := r.qps[uint32(pkt.DstCtx)]
	if !ok {
		return
	}
	pd, ok := qp.pending[pkt.Hdr.MsgID]
	if !ok {
		return
	}
	delete(qp.pending, pkt.Hdr.MsgID)
	bytes := pd.bytes
	if status != StatusOK {
		bytes = 0
	}
	r.writeCQE(p, qp, pd.wrid, status, pd.opcode, bytes, pd.begin)
}

// writeCQE DMA-writes a completion into the QP's CQ ring, publishes the
// producer index on the doorbell page and wakes pollers.
func (r *RNIC) writeCQE(p *sim.Proc, qp *hwQP, wrid uint64, status, opcode uint32,
	bytes uint64, begin time.Duration) {
	p.Sleep(r.pr.VerbsCQEWrite)
	var b [CQESize]byte
	EncodeCQE(b[:], &CQE{WRID: wrid, Status: status, Opcode: opcode, Bytes: bytes})
	if err := r.phys.WriteAt(qp.cq.slot(qp.cqProd), b[:]); err != nil {
		r.e.Fail(err)
		return
	}
	qp.cqProd++
	if err := r.phys.WriteU64(qp.db.Addr+dbCQProd, uint64(qp.cqProd)); err != nil {
		r.e.Fail(err)
		return
	}
	r.CQEs++
	if status != StatusOK {
		r.ErrCQEs++
	}
	r.e.Recorder().Span(trace.CatVerbs, "cqe", r.track(), begin, p.Now())
	r.Notify.Broadcast()
}
