package verbs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/mlx"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/uproc"
	"repro/internal/verbs"
)

// withCluster boots a cluster and runs body in a simulation process.
func withCluster(t *testing.T, os cluster.OSType, nodes int, seed int64,
	body func(p *sim.Proc, cl *cluster.Cluster) error) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes: nodes, OS: os, Params: model.Default(), Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cl.E.Go("test", func(p *sim.Proc) {
		if err := body(p, cl); err != nil {
			t.Error(err)
		}
		done = true
	})
	if err := cl.E.Run(0); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test body did not complete")
	}
	return cl
}

// syscallTotal sums kernel time across every node's profilers — the
// quantity that must not move during the data path.
func syscallTotal(cl *cluster.Cluster) time.Duration {
	var tot time.Duration
	for _, n := range cl.Nodes {
		tot += n.Lin.Syscalls.Total()
		if n.Mck != nil {
			tot += n.Mck.Syscalls.Total()
		}
	}
	return tot
}

// pair is an initiator (node 0) with an RTS QP bound to a passive
// RDMA target (node 1), with size-byte registered buffers on both ends.
type pair struct {
	osI, osT   verbs.OSOps
	uI, uT     *verbs.UContext
	qpI, qpT   *verbs.QP
	bufI, bufT uproc.VirtAddr
	mrI, mrT   *verbs.MR
}

func setupPair(p *sim.Proc, cl *cluster.Cluster, size uint64, targetAccess uint32) (*pair, error) {
	pr := &pair{}
	pr.osI = cl.Nodes[0].NewRankOS(0).(verbs.OSOps)
	pr.osT = cl.Nodes[1].NewRankOS(1).(verbs.OSOps)
	var err error
	if pr.uI, err = verbs.Open(p, pr.osI); err != nil {
		return nil, err
	}
	if pr.uT, err = verbs.Open(p, pr.osT); err != nil {
		return nil, err
	}
	// Target: window buffer plus an any-source QP in RTR.
	if pr.bufT, err = pr.osT.MmapAnon(p, size); err != nil {
		return nil, err
	}
	if pr.mrT, err = pr.uT.RegMR(p, pr.bufT, size, targetAccess); err != nil {
		return nil, err
	}
	if pr.qpT, err = pr.uT.CreateQP(p, verbs.QPConfig{}); err != nil {
		return nil, err
	}
	if err = pr.qpT.ToInit(p); err != nil {
		return nil, err
	}
	if err = pr.qpT.ToRTRAnySource(p); err != nil {
		return nil, err
	}
	// Initiator: local buffer plus a connected QP in RTS.
	if pr.bufI, err = pr.osI.MmapAnon(p, size); err != nil {
		return nil, err
	}
	if pr.mrI, err = pr.uI.RegMR(p, pr.bufI, size, mlx.AccessLocalWrite); err != nil {
		return nil, err
	}
	if pr.qpI, err = pr.uI.CreateQP(p, verbs.QPConfig{}); err != nil {
		return nil, err
	}
	if err = pr.qpI.ToInit(p); err != nil {
		return nil, err
	}
	if err = pr.qpI.ToRTR(p, 1, pr.qpT.QPN); err != nil {
		return nil, err
	}
	if err = pr.qpI.ToRTS(p); err != nil {
		return nil, err
	}
	return pr, nil
}

func pattern(n uint64, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + salt
	}
	return b
}

// TestRDMAWriteReadByteExact drives an RDMA WRITE then an RDMA READ
// between two nodes for message sizes straddling the one-page,
// multi-page and large-page boundaries, on all three OS configurations,
// and checks the remote/local memory byte-for-byte against an in-memory
// reference. It also asserts the paper's kernel-bypass claim: after QP
// setup, the entire data path adds zero time to any kernel's syscall
// profile on either node.
func TestRDMAWriteReadByteExact(t *testing.T) {
	sizes := []uint64{1000, 12345, 2<<20 + 4096}
	for _, os := range cluster.AllOSTypes {
		for _, size := range sizes {
			t.Run(fmt.Sprintf("%s/%d", os, size), func(t *testing.T) {
				withCluster(t, os, 2, 7, func(p *sim.Proc, cl *cluster.Cluster) error {
					return writeReadBody(p, cl, size)
				})
			})
		}
	}
}

func writeReadBody(p *sim.Proc, cl *cluster.Cluster, size uint64) error {
	pr, err := setupPair(p, cl, size,
		mlx.AccessLocalWrite|mlx.AccessRemoteRead|mlx.AccessRemoteWrite)
	if err != nil {
		return err
	}
	procI, procT := pr.osI.Proc(), pr.osT.Proc()
	ref := pattern(size, 13)
	if err := procI.WriteAt(pr.bufI, ref); err != nil {
		return err
	}

	base := syscallTotal(cl)

	// WRITE: local pattern lands in the remote window.
	err = pr.qpI.PostSend(p, &verbs.WQE{Opcode: verbs.OpcodeWrite, WRID: 1,
		LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI), Len: size,
		RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT)})
	if err != nil {
		return err
	}
	cqes, err := pr.qpI.WaitCQ(p, 1)
	if err != nil {
		return err
	}
	if len(cqes) != 1 || cqes[0].Status != verbs.StatusOK || cqes[0].WRID != 1 ||
		cqes[0].Opcode != verbs.OpcodeWrite || cqes[0].Bytes != size {
		return fmt.Errorf("WRITE completion = %+v", cqes)
	}
	got := make([]byte, size)
	if err := procT.ReadAt(pr.bufT, got); err != nil {
		return err
	}
	if !bytes.Equal(got, ref) {
		return fmt.Errorf("WRITE payload mismatch (size %d)", size)
	}

	// READ: fresh remote content lands in the local buffer.
	ref2 := pattern(size, 101)
	if err := procT.WriteAt(pr.bufT, ref2); err != nil {
		return err
	}
	err = pr.qpI.PostSend(p, &verbs.WQE{Opcode: verbs.OpcodeRead, WRID: 2,
		LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI), Len: size,
		RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT)})
	if err != nil {
		return err
	}
	if cqes, err = pr.qpI.WaitCQ(p, 1); err != nil {
		return err
	}
	if len(cqes) != 1 || cqes[0].Status != verbs.StatusOK || cqes[0].WRID != 2 {
		return fmt.Errorf("READ completion = %+v", cqes)
	}
	if err := procI.ReadAt(pr.bufI, got); err != nil {
		return err
	}
	if !bytes.Equal(got, ref2) {
		return fmt.Errorf("READ payload mismatch (size %d)", size)
	}

	if d := syscallTotal(cl) - base; d != 0 {
		return fmt.Errorf("data path entered a kernel: syscall profile grew by %v", d)
	}
	return nil
}

// TestCQErrors checks that every misuse of the data path surfaces as an
// error completion with the right status — never a hang, never silent
// memory corruption.
func TestCQErrors(t *testing.T) {
	const size = 4096
	withCluster(t, cluster.OSMcKernelHFI, 2, 11, func(p *sim.Proc, cl *cluster.Cluster) error {
		// Target window deliberately lacks RemoteRead.
		pr, err := setupPair(p, cl, size, mlx.AccessLocalWrite|mlx.AccessRemoteWrite)
		if err != nil {
			return err
		}
		post1 := func(w *verbs.WQE) (verbs.CQE, error) {
			if err := pr.qpI.PostSend(p, w); err != nil {
				return verbs.CQE{}, err
			}
			cqes, err := pr.qpI.WaitCQ(p, 1)
			if err != nil {
				return verbs.CQE{}, err
			}
			if len(cqes) != 1 {
				return verbs.CQE{}, fmt.Errorf("got %d completions", len(cqes))
			}
			return cqes[0], nil
		}
		cases := []struct {
			name string
			wqe  verbs.WQE
			want uint32
		}{
			{"wrong rkey", verbs.WQE{Opcode: verbs.OpcodeWrite, WRID: 1,
				LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI), Len: 64,
				RKey: 0xdead, RAddr: uint64(pr.bufT)}, verbs.StatusRemoteInvalid},
			{"remote out of bounds", verbs.WQE{Opcode: verbs.OpcodeWrite, WRID: 2,
				LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI), Len: 64,
				RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT) + size - 4}, verbs.StatusRemoteAccess},
			{"READ without RemoteRead", verbs.WQE{Opcode: verbs.OpcodeRead, WRID: 3,
				LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI), Len: 64,
				RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT)}, verbs.StatusRemoteAccess},
			{"bad lkey", verbs.WQE{Opcode: verbs.OpcodeWrite, WRID: 4,
				LKey: 0xbeef, LAddr: uint64(pr.bufI), Len: 64,
				RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT)}, verbs.StatusLocalProt},
			{"local out of bounds", verbs.WQE{Opcode: verbs.OpcodeWrite, WRID: 5,
				LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI) + size - 4, Len: 64,
				RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT)}, verbs.StatusLocalProt},
		}
		for _, c := range cases {
			cqe, err := post1(&c.wqe)
			if err != nil {
				return fmt.Errorf("%s: %v", c.name, err)
			}
			if cqe.Status != c.want || cqe.WRID != c.wqe.WRID {
				return fmt.Errorf("%s: completion = %+v, want status %s",
					c.name, cqe, verbs.StatusString(c.want))
			}
		}
		// A failed WRITE must not have touched the window.
		got := make([]byte, size)
		if err := pr.osT.Proc().ReadAt(pr.bufT, got); err != nil {
			return err
		}
		if !bytes.Equal(got, make([]byte, size)) {
			return fmt.Errorf("error path modified target memory")
		}
		// Posting on a QP that never reached RTS completes in error.
		qp2, err := pr.uI.CreateQP(p, verbs.QPConfig{})
		if err != nil {
			return err
		}
		if err := qp2.ToInit(p); err != nil {
			return err
		}
		if err := qp2.PostSend(p, &verbs.WQE{Opcode: verbs.OpcodeWrite, WRID: 6,
			LKey: pr.mrI.LKey, LAddr: uint64(pr.bufI), Len: 64,
			RKey: pr.mrT.LKey, RAddr: uint64(pr.bufT)}); err != nil {
			return err
		}
		cqes, err := qp2.WaitCQ(p, 1)
		if err != nil {
			return err
		}
		if cqes[0].Status != verbs.StatusLocalQPErr {
			return fmt.Errorf("post on INIT QP: completion = %+v", cqes[0])
		}
		return nil
	})
}

// TestSendRecvChannel exercises the two-sided path: RNR when the RQ is
// empty, a byte-exact delivery into a posted receive, and the truncation
// error when the message overruns the receive buffer.
func TestSendRecvChannel(t *testing.T) {
	const size = 8192
	withCluster(t, cluster.OSMcKernel, 2, 19, func(p *sim.Proc, cl *cluster.Cluster) error {
		osI := cl.Nodes[0].NewRankOS(0).(verbs.OSOps)
		osT := cl.Nodes[1].NewRankOS(1).(verbs.OSOps)
		uI, err := verbs.Open(p, osI)
		if err != nil {
			return err
		}
		uT, err := verbs.Open(p, osT)
		if err != nil {
			return err
		}
		bufI, err := osI.MmapAnon(p, size)
		if err != nil {
			return err
		}
		bufT, err := osT.MmapAnon(p, size)
		if err != nil {
			return err
		}
		mrI, err := uI.RegMR(p, bufI, size, mlx.AccessLocalWrite)
		if err != nil {
			return err
		}
		mrT, err := uT.RegMR(p, bufT, size, mlx.AccessLocalWrite)
		if err != nil {
			return err
		}
		// Connected in both directions: SENDs consume the target's RQ.
		qpI, err := uI.CreateQP(p, verbs.QPConfig{})
		if err != nil {
			return err
		}
		qpT, err := uT.CreateQP(p, verbs.QPConfig{})
		if err != nil {
			return err
		}
		if err := qpI.ToInit(p); err != nil {
			return err
		}
		if err := qpI.ToRTR(p, 1, qpT.QPN); err != nil {
			return err
		}
		if err := qpI.ToRTS(p); err != nil {
			return err
		}
		if err := qpT.ToInit(p); err != nil {
			return err
		}
		if err := qpT.ToRTR(p, 0, qpI.QPN); err != nil {
			return err
		}

		ref := pattern(size, 77)
		if err := osI.Proc().WriteAt(bufI, ref); err != nil {
			return err
		}
		send := func(wrid, n uint64) error {
			return qpI.PostSend(p, &verbs.WQE{Opcode: verbs.OpcodeSend, WRID: wrid,
				LKey: mrI.LKey, LAddr: uint64(bufI), Len: n})
		}

		// RQ empty: receiver not ready.
		if err := send(1, size); err != nil {
			return err
		}
		cqes, err := qpI.WaitCQ(p, 1)
		if err != nil {
			return err
		}
		if cqes[0].Status != verbs.StatusRNR {
			return fmt.Errorf("SEND to empty RQ: completion = %+v", cqes[0])
		}

		// Posted receive: byte-exact delivery, completions on both ends.
		if err := qpT.PostRecv(p, &verbs.WQE{WRID: 100, LKey: mrT.LKey,
			LAddr: uint64(bufT), Len: size}); err != nil {
			return err
		}
		if err := send(2, size); err != nil {
			return err
		}
		if cqes, err = qpI.WaitCQ(p, 1); err != nil {
			return err
		}
		if cqes[0].Status != verbs.StatusOK || cqes[0].Opcode != verbs.OpcodeSend {
			return fmt.Errorf("SEND completion = %+v", cqes[0])
		}
		rcq, err := qpT.WaitCQ(p, 1)
		if err != nil {
			return err
		}
		if rcq[0].Status != verbs.StatusOK || rcq[0].Opcode != verbs.OpcodeRecv ||
			rcq[0].WRID != 100 || rcq[0].Bytes != size {
			return fmt.Errorf("RECV completion = %+v", rcq[0])
		}
		got := make([]byte, size)
		if err := osT.Proc().ReadAt(bufT, got); err != nil {
			return err
		}
		if !bytes.Equal(got, ref) {
			return fmt.Errorf("SEND payload mismatch")
		}

		// Receive buffer too small: truncation error on both sides.
		if err := qpT.PostRecv(p, &verbs.WQE{WRID: 101, LKey: mrT.LKey,
			LAddr: uint64(bufT), Len: 100}); err != nil {
			return err
		}
		if err := send(3, size); err != nil {
			return err
		}
		if cqes, err = qpI.WaitCQ(p, 1); err != nil {
			return err
		}
		if cqes[0].Status != verbs.StatusRemoteInvalid {
			return fmt.Errorf("overrun SEND completion = %+v", cqes[0])
		}
		if rcq, err = qpT.WaitCQ(p, 1); err != nil {
			return err
		}
		if rcq[0].Status != verbs.StatusLocalLen || rcq[0].WRID != 101 {
			return fmt.Errorf("overrun RECV completion = %+v", rcq[0])
		}
		return nil
	})
}

// TestReleaseTeardown closes a device file with live MRs and QPs still
// attached: the driver must destroy the QPs through the engine, tear
// down every orphaned registration, unpin the pages and invalidate the
// HCA keys — no leak survives the file.
func TestReleaseTeardown(t *testing.T) {
	cl := withCluster(t, cluster.OSLinux, 1, 23, func(p *sim.Proc, cl *cluster.Cluster) error {
		os := cl.Nodes[0].NewRankOS(0).(verbs.OSOps)
		u, err := verbs.Open(p, os)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			buf, err := os.MmapAnon(p, 256<<10)
			if err != nil {
				return err
			}
			if _, err := u.RegMR(p, buf, 256<<10, mlx.AccessLocalWrite); err != nil {
				return err
			}
		}
		qp, err := u.CreateQP(p, verbs.QPConfig{})
		if err != nil {
			return err
		}
		if err := qp.ToInit(p); err != nil {
			return err
		}
		if _, err := u.CreateQP(p, verbs.QPConfig{}); err != nil {
			return err
		}
		n := cl.Nodes[0]
		if n.Mlx.LiveMRs() != 3 || n.RNIC.LiveQPs() != 2 || n.RNIC.KeysLive() != 3 {
			return fmt.Errorf("pre-close: MRs=%d QPs=%d keys=%d",
				n.Mlx.LiveMRs(), n.RNIC.LiveQPs(), n.RNIC.KeysLive())
		}
		return u.Close(p)
	})
	n := cl.Nodes[0]
	if n.Mlx.LiveMRs() != 0 {
		t.Errorf("LiveMRs = %d after close", n.Mlx.LiveMRs())
	}
	if n.RNIC.LiveQPs() != 0 {
		t.Errorf("LiveQPs = %d after close", n.RNIC.LiveQPs())
	}
	if n.RNIC.KeysLive() != 0 {
		t.Errorf("KeysLive = %d after close", n.RNIC.KeysLive())
	}
}

// TestRDMAImmuneToFabricFaults pins the fault model's RDMA exemption:
// verbs traffic models a hardware-reliable HCA whose link-level retry
// sits below the simulation, so even a heavily lossy fault profile
// applied to the InfiniBand fabric must inject nothing into KindRDMA
// packets. The WRITE/READ data path must complete with StatusOK CQEs
// and byte-exact payloads, and the fabric's fault counters must stay
// zero — no drop, corruption, duplication or reordering ever reaches
// the CQ, which is exactly the retry semantics the CQ contract assumes.
func TestRDMAImmuneToFabricFaults(t *testing.T) {
	fp := fabric.FaultProfile{
		LinkFaults: fabric.LinkFaults{
			Drop: 0.5, Corrupt: 0.3, Dup: 0.5, Reorder: 0.5,
			ReorderDelay: time.Microsecond,
		},
		Seed: 17,
	}
	cl, err := cluster.New(cluster.Config{
		Nodes: 2, OS: cluster.OSMcKernelHFI, Params: model.Default(), Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cluster only arms its OmniPath fabric; arm the InfiniBand
	// fabric too so the KindRDMA exemption (not fabric separation) is
	// what keeps the data path clean.
	cl.IBFab.SetFaults(&fp)
	done := false
	cl.E.Go("test", func(p *sim.Proc) {
		if err := writeReadBody(p, cl, 12345); err != nil {
			t.Error(err)
		}
		done = true
	})
	if err := cl.E.Run(0); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test body did not complete")
	}
	if fs := cl.IBFab.FaultStats(); fs != (fabric.FaultStats{}) {
		t.Fatalf("fault injection touched RDMA traffic: %+v", fs)
	}
}
