// Userspace verbs library. Setup (device open, memory registration, QP
// creation and state transitions, ring mmaps) goes through the OS
// personality — system calls, offloaded or fast-pathed depending on the
// configuration. After setup the data path (PostSend/PostRecv/PollCQ/
// WaitCQ) touches only mapped memory and the doorbell MMIO: zero system
// calls, identical on every OS configuration. That asymmetry is the
// paper's whole argument for porting only the registration routines.
package verbs

import (
	"fmt"
	"time"

	"repro/internal/mlx"
	"repro/internal/psm"
	"repro/internal/sim"
	"repro/internal/uproc"
)

// OSOps extends the PSM system interface with access to the node's HCA
// (the user-mapped device: doorbell MMIO and completion polling).
type OSOps interface {
	psm.OSOps
	RNIC() *RNIC
}

// cqPollDelay models the gap between a CQE landing in host memory and a
// polling thread noticing it.
const cqPollDelay = 100 * time.Nanosecond

// UContext is an open verbs device context.
type UContext struct {
	os    OSOps
	h     psm.Handle
	rnic  *RNIC
	proc  *uproc.Process
	argVA uproc.VirtAddr // scratch page for ioctl arguments
}

// Open opens the verbs device and allocates the ioctl scratch page.
func Open(p *sim.Proc, os OSOps) (*UContext, error) {
	h, err := os.Open(p, mlx.DevicePath)
	if err != nil {
		return nil, err
	}
	argVA, err := os.MmapAnon(p, 4096)
	if err != nil {
		return nil, err
	}
	return &UContext{os: os, h: h, rnic: os.RNIC(), proc: os.Proc(), argVA: argVA}, nil
}

// Close releases the device (the driver tears down anything left live).
func (u *UContext) Close(p *sim.Proc) error {
	if err := u.os.Munmap(p, u.argVA); err != nil {
		return err
	}
	return u.os.Close(p, u.h)
}

// MR is a registered memory region. The rkey a peer uses equals the
// lkey in this model.
type MR struct {
	LKey   uint32
	Addr   uproc.VirtAddr
	Length uint64
}

// RegMR registers [va, va+length) with the given access and returns its
// key — the registration system call the PicoDriver fast-paths.
func (u *UContext) RegMR(p *sim.Proc, va uproc.VirtAddr, length uint64, access uint32) (*MR, error) {
	mi := mlx.MRInfo{VAddr: va, Length: length, Access: access}
	if err := mlx.EncodeMRInfo(u.proc, u.argVA, &mi); err != nil {
		return nil, err
	}
	if _, err := u.os.Ioctl(p, u.h, mlx.CmdRegMR, u.argVA); err != nil {
		return nil, err
	}
	out, err := mlx.DecodeMRInfo(u.proc, u.argVA)
	if err != nil {
		return nil, err
	}
	return &MR{LKey: out.LKey, Addr: va, Length: length}, nil
}

// DeregMR releases a registration.
func (u *UContext) DeregMR(p *sim.Proc, mr *MR) error {
	mi := mlx.MRInfo{LKey: mr.LKey}
	if err := mlx.EncodeMRInfo(u.proc, u.argVA, &mi); err != nil {
		return err
	}
	_, err := u.os.Ioctl(p, u.h, mlx.CmdDeregMR, u.argVA)
	return err
}

// QPConfig sizes a queue pair's rings. Zero fields take defaults; the
// CQ is always sized to hold every possible outstanding completion.
type QPConfig struct {
	SQEntries uint32
	RQEntries uint32
}

// QP is the userspace view of a queue pair: mapped rings plus local
// producer/consumer cursors. Not safe for use by more than one process.
type QP struct {
	QPN uint32

	u          *UContext
	sqVA, rqVA uproc.VirtAddr
	cqVA, dbVA uproc.VirtAddr
	sqEntries  uint32
	rqEntries  uint32
	cqEntries  uint32
	sqTail     uint32
	rqTail     uint32
	cqCons     uint32
}

// CreateQP creates a QP in RESET and maps its rings into the process.
func (u *UContext) CreateQP(p *sim.Proc, cfg QPConfig) (*QP, error) {
	if cfg.SQEntries == 0 {
		cfg.SQEntries = 64
	}
	if cfg.RQEntries == 0 {
		cfg.RQEntries = 64
	}
	qi := mlx.QPInfo{
		SQEntries: cfg.SQEntries,
		RQEntries: cfg.RQEntries,
		CQEntries: cfg.SQEntries + cfg.RQEntries,
	}
	if err := mlx.EncodeQPInfo(u.proc, u.argVA, &qi); err != nil {
		return nil, err
	}
	if _, err := u.os.Ioctl(p, u.h, mlx.CmdCreateQP, u.argVA); err != nil {
		return nil, err
	}
	out, err := mlx.DecodeQPInfo(u.proc, u.argVA)
	if err != nil {
		return nil, err
	}
	qp := &QP{QPN: out.QPN, u: u,
		sqEntries: cfg.SQEntries, rqEntries: cfg.RQEntries,
		cqEntries: qi.CQEntries}
	mapr := func(region uint32, length uint64) (uproc.VirtAddr, error) {
		return u.os.MmapDevice(p, u.h, mlx.MmapKind(region, out.QPN), length)
	}
	if qp.sqVA, err = mapr(mlx.MmapSQ, uint64(cfg.SQEntries)*WQESize); err != nil {
		return nil, err
	}
	if qp.rqVA, err = mapr(mlx.MmapRQ, uint64(cfg.RQEntries)*WQESize); err != nil {
		return nil, err
	}
	if qp.cqVA, err = mapr(mlx.MmapCQ, uint64(qi.CQEntries)*CQESize); err != nil {
		return nil, err
	}
	if qp.dbVA, err = mapr(mlx.MmapDB, 4096); err != nil {
		return nil, err
	}
	return qp, nil
}

// modify drives one state transition through the control path.
func (u *UContext) modify(p *sim.Proc, qi *mlx.QPInfo) error {
	if err := mlx.EncodeQPInfo(u.proc, u.argVA, qi); err != nil {
		return err
	}
	_, err := u.os.Ioctl(p, u.h, mlx.CmdModifyQP, u.argVA)
	return err
}

// ToInit moves RESET→INIT.
func (qp *QP) ToInit(p *sim.Proc) error {
	return qp.u.modify(p, &mlx.QPInfo{QPN: qp.QPN, State: mlx.QPStateInit})
}

// ToRTR moves INIT→RTR, binding the remote peer QP.
func (qp *QP) ToRTR(p *sim.Proc, remoteNode int, remoteQPN uint32) error {
	return qp.u.modify(p, &mlx.QPInfo{QPN: qp.QPN, State: mlx.QPStateRTR,
		RemoteNode: uint32(remoteNode), RemoteQPN: remoteQPN})
}

// ToRTRAnySource moves INIT→RTR as a pure RDMA target accepting
// WRITE/READ from any peer (the shape MPI windows use).
func (qp *QP) ToRTRAnySource(p *sim.Proc) error {
	return qp.u.modify(p, &mlx.QPInfo{QPN: qp.QPN, State: mlx.QPStateRTR,
		Flags: mlx.QPFlagAnySource})
}

// ToRTS moves RTR→RTS.
func (qp *QP) ToRTS(p *sim.Proc) error {
	return qp.u.modify(p, &mlx.QPInfo{QPN: qp.QPN, State: mlx.QPStateRTS})
}

// Destroy frees the QP and its rings.
func (qp *QP) Destroy(p *sim.Proc) error {
	u := qp.u
	qi := mlx.QPInfo{QPN: qp.QPN}
	if err := mlx.EncodeQPInfo(u.proc, u.argVA, &qi); err != nil {
		return err
	}
	_, err := u.os.Ioctl(p, u.h, mlx.CmdDestroyQP, u.argVA)
	return err
}

// PostSend queues one work request on the SQ and rings the doorbell.
// This is the entire submit path: two mapped-memory writes plus one MMIO
// store — no system call on any OS configuration.
func (qp *QP) PostSend(p *sim.Proc, w *WQE) error {
	cons, err := qp.u.proc.ReadU64(qp.dbVA + dbSQCons)
	if err != nil {
		return err
	}
	if qp.sqTail-uint32(cons) >= qp.sqEntries {
		return fmt.Errorf("verbs: SQ full on QP %d", qp.QPN)
	}
	var b [WQESize]byte
	EncodeWQE(b[:], w)
	slot := qp.sqVA + uproc.VirtAddr((qp.sqTail%qp.sqEntries)*WQESize)
	if err := qp.u.proc.WriteAt(slot, b[:]); err != nil {
		return err
	}
	qp.sqTail++
	if err := qp.u.proc.WriteU64(qp.dbVA+dbSQTail, uint64(qp.sqTail)); err != nil {
		return err
	}
	return qp.u.rnic.RingDoorbell(p, qp.QPN)
}

// PostRecv queues a receive buffer on the RQ.
func (qp *QP) PostRecv(p *sim.Proc, w *WQE) error {
	cons, err := qp.u.proc.ReadU64(qp.dbVA + dbRQCons)
	if err != nil {
		return err
	}
	if qp.rqTail-uint32(cons) >= qp.rqEntries {
		return fmt.Errorf("verbs: RQ full on QP %d", qp.QPN)
	}
	var b [WQESize]byte
	EncodeWQE(b[:], w)
	slot := qp.rqVA + uproc.VirtAddr((qp.rqTail%qp.rqEntries)*WQESize)
	if err := qp.u.proc.WriteAt(slot, b[:]); err != nil {
		return err
	}
	qp.rqTail++
	if err := qp.u.proc.WriteU64(qp.dbVA+dbRQTail, uint64(qp.rqTail)); err != nil {
		return err
	}
	return qp.u.rnic.RingDoorbell(p, qp.QPN)
}

// PollCQ drains available completions without blocking (and without any
// kernel involvement: it reads the HCA-written producer index from the
// mapped doorbell page).
func (qp *QP) PollCQ(p *sim.Proc) ([]CQE, error) {
	prod, err := qp.u.proc.ReadU64(qp.dbVA + dbCQProd)
	if err != nil {
		return nil, err
	}
	var out []CQE
	for qp.cqCons != uint32(prod) {
		var b [CQESize]byte
		slot := qp.cqVA + uproc.VirtAddr((qp.cqCons%qp.cqEntries)*CQESize)
		if err := qp.u.proc.ReadAt(slot, b[:]); err != nil {
			return nil, err
		}
		out = append(out, DecodeCQE(b[:]))
		qp.cqCons++
	}
	return out, nil
}

// WaitCQ busy-polls until n completions are available, parking on the
// HCA's notify condition between polls.
func (qp *QP) WaitCQ(p *sim.Proc, n int) ([]CQE, error) {
	var out []CQE
	for {
		got, err := qp.PollCQ(p)
		if err != nil {
			return nil, err
		}
		out = append(out, got...)
		if len(out) >= n {
			return out, nil
		}
		qp.u.rnic.Notify.Wait(p)
		p.Sleep(cqPollDelay)
	}
}
