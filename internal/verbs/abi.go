// Wire and ring ABI of the simulated HCA: work-queue entries, completion
// entries and the doorbell page are fixed little-endian layouts in
// simulated memory. Userspace writes WQEs into mapped rings and the HCA
// DMA-reads them; the HCA DMA-writes CQEs and userspace polls them — the
// two sides only ever share bytes, never Go pointers, exactly like the
// hfi header-queue ABI.
package verbs

import "encoding/binary"

// Work-request opcodes (WQE field and wire Hdr.Op).
const (
	OpcodeSend  uint32 = 1
	OpcodeWrite uint32 = 2 // RDMA WRITE
	OpcodeRead  uint32 = 3 // RDMA READ
	// OpcodeRecv labels receive completions in CQEs (never in a SQ WQE).
	OpcodeRecv uint32 = 4

	// Wire-only opcodes.
	opReadResp uint32 = 5
	opAck      uint32 = 6
	opNak      uint32 = 7
)

// Completion statuses.
const (
	StatusOK            uint32 = 0
	StatusLocalProt     uint32 = 1 // local key/bounds/access violation
	StatusLocalQPErr    uint32 = 2 // WQE processed on a QP not in RTS
	StatusLocalLen      uint32 = 3 // inbound SEND overruns the RQ buffer
	StatusRemoteAccess  uint32 = 4 // remote bounds or permission violation
	StatusRemoteInvalid uint32 = 5 // unknown rkey/QPN or wrong QP flavor
	StatusRNR           uint32 = 6 // receiver not ready (RQ empty)
)

// StatusString names a completion status for diagnostics.
func StatusString(s uint32) string {
	switch s {
	case StatusOK:
		return "success"
	case StatusLocalProt:
		return "local-protection"
	case StatusLocalQPErr:
		return "local-qp-error"
	case StatusLocalLen:
		return "local-length"
	case StatusRemoteAccess:
		return "remote-access"
	case StatusRemoteInvalid:
		return "remote-invalid"
	case StatusRNR:
		return "rnr"
	}
	return "unknown"
}

// WQESize is the fixed work-queue-entry stride.
const WQESize = 64

// WQE is one work request as encoded into an SQ or RQ ring. RQ entries
// use only WRID/LKey/LAddr/Len.
type WQE struct {
	Opcode uint32
	WRID   uint64
	LKey   uint32
	LAddr  uint64
	Len    uint64
	RKey   uint32
	RAddr  uint64
}

// EncodeWQE serializes a WQE into its ring slot bytes.
func EncodeWQE(b []byte, w *WQE) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], w.Opcode)
	le.PutUint64(b[8:], w.WRID)
	le.PutUint32(b[16:], w.LKey)
	le.PutUint64(b[24:], w.LAddr)
	le.PutUint64(b[32:], w.Len)
	le.PutUint32(b[40:], w.RKey)
	le.PutUint64(b[48:], w.RAddr)
}

// DecodeWQE parses a ring slot.
func DecodeWQE(b []byte) WQE {
	le := binary.LittleEndian
	return WQE{
		Opcode: le.Uint32(b[0:]),
		WRID:   le.Uint64(b[8:]),
		LKey:   le.Uint32(b[16:]),
		LAddr:  le.Uint64(b[24:]),
		Len:    le.Uint64(b[32:]),
		RKey:   le.Uint32(b[40:]),
		RAddr:  le.Uint64(b[48:]),
	}
}

// CQESize is the fixed completion-queue-entry stride.
const CQESize = 32

// CQE is one completion as read from a mapped CQ ring.
type CQE struct {
	WRID   uint64
	Status uint32
	Opcode uint32
	Bytes  uint64
}

// EncodeCQE serializes a completion into its ring slot bytes.
func EncodeCQE(b []byte, c *CQE) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], c.WRID)
	le.PutUint32(b[8:], c.Status)
	le.PutUint32(b[12:], c.Opcode)
	le.PutUint64(b[16:], c.Bytes)
}

// DecodeCQE parses a CQ ring slot.
func DecodeCQE(b []byte) CQE {
	le := binary.LittleEndian
	return CQE{
		WRID:   le.Uint64(b[0:]),
		Status: le.Uint32(b[8:]),
		Opcode: le.Uint32(b[12:]),
		Bytes:  le.Uint64(b[16:]),
	}
}

// Doorbell/status page layout (one 4 KiB page per QP). The producer
// tails are written by userspace and DMA-read by the HCA at doorbell
// time; the consumer/producer counts on the right are DMA-written by
// the HCA and polled by userspace with no kernel involvement.
const (
	dbSQTail = 0  // user → HCA: SQ producer index
	dbRQTail = 8  // user → HCA: RQ producer index
	dbCQProd = 16 // HCA → user: CQ producer index
	dbSQCons = 24 // HCA → user: SQ consumer index (ring-full detection)
	dbRQCons = 32 // HCA → user: RQ consumer index
)
