// Package snapshot implements explicit, versioned serialization of the
// complete simulator state, and checkpoint/restore on top of it.
//
// A snapshot is a container file: a fixed header (magic, format
// version, the virtual time and engine sequence counter at capture)
// followed by named sections, one per state owner — the engine itself
// plus every layer that registered a state encoder (fabric, NIC,
// kernels, PSM endpoints, verbs HCAs, physical memory, ...) — and a
// trailing SHA-256 over the whole image. Section payloads are
// deterministic text: sorted, pointer-free, wall-clock-free, so two
// captures of identical simulator states are byte-identical. That
// byte identity is the correctness currency of the whole design.
//
// Restore is replay-based: simulated processes are goroutines and Go
// cannot serialize a goroutine stack, so a snapshot cannot be decoded
// into live process continuations. Instead the caller rebuilds the
// simulation exactly as the original run did (same constructors, same
// seed, same workload processes) and Restore re-executes it to the
// snapshot's virtual time — cheap, since the expensive parts of a
// debugging run (tracing, invariant checking) stay off during replay —
// then re-serializes the rebuilt state and byte-compares it against
// the snapshot. Any divergence fails loudly, naming the first section
// that differs. Determinism is already pinned by simtest replay
// digests, which is what makes this verification exact rather than
// probabilistic: a restored run is not "similar to" the original, it
// is the original, and the byte comparison proves it.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Magic identifies a snapshot file; Version is the format revision.
// Both are pinned by a golden-file test: readers reject unknown
// versions instead of guessing.
const (
	Magic   = "PICOSNAP"
	Version = 1
)

// maxSections bounds the section table so a corrupted count cannot
// drive allocation. Real snapshots carry a few sections per node.
const maxSections = 1 << 20

// Section is one named state payload.
type Section struct {
	Name    string
	Payload []byte
}

// File is a decoded snapshot.
type File struct {
	Version uint32
	// Now is the virtual clock at capture; Seq the engine's event
	// sequence counter. Together they name the exact replay position.
	Now      time.Duration
	Seq      uint64
	Sections []Section
}

// Section returns the named section's payload, or nil.
func (f *File) Section(name string) []byte {
	for _, s := range f.Sections {
		if s.Name == name {
			return s.Payload
		}
	}
	return nil
}

// Encode writes f in the versioned container format. Encoding is
// deterministic: identical Files serialize to identical bytes.
func Encode(w io.Writer, f *File) error {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	buf.Write(u32[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(f.Now))
	buf.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], f.Seq)
	buf.Write(u64[:])
	putUvarint(&buf, uint64(len(f.Sections)))
	for _, s := range f.Sections {
		putUvarint(&buf, uint64(len(s.Name)))
		buf.WriteString(s.Name)
		putUvarint(&buf, uint64(len(s.Payload)))
		buf.Write(s.Payload)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(f *File) []byte {
	var buf bytes.Buffer
	Encode(&buf, f) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

// Decode parses a snapshot image. It never panics: corrupted or
// truncated input returns an error. The trailing checksum must match.
func Decode(data []byte) (*File, error) {
	r := reader{data: data}
	magic, err := r.bytes(len(Magic))
	if err != nil || string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a snapshot file)")
	}
	verb, err := r.bytes(4)
	if err != nil {
		return nil, fmt.Errorf("snapshot: truncated header")
	}
	ver := binary.LittleEndian.Uint32(verb)
	if ver != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads version %d", ver, Version)
	}
	nowb, err := r.bytes(8)
	if err != nil {
		return nil, fmt.Errorf("snapshot: truncated header")
	}
	seqb, err := r.bytes(8)
	if err != nil {
		return nil, fmt.Errorf("snapshot: truncated header")
	}
	f := &File{
		Version: ver,
		Now:     time.Duration(binary.LittleEndian.Uint64(nowb)),
		Seq:     binary.LittleEndian.Uint64(seqb),
	}
	if f.Now < 0 {
		return nil, fmt.Errorf("snapshot: negative virtual time %d", f.Now)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("snapshot: section count: %w", err)
	}
	if n > maxSections {
		return nil, fmt.Errorf("snapshot: implausible section count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		nameLen, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %d name length: %w", i, err)
		}
		name, err := r.bytesU64(nameLen)
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %d name: %w", i, err)
		}
		payLen, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %q payload length: %w", name, err)
		}
		payload, err := r.bytesU64(payLen)
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %q payload: %w", name, err)
		}
		f.Sections = append(f.Sections, Section{Name: string(name), Payload: append([]byte(nil), payload...)})
	}
	body := data[:r.pos]
	sum, err := r.bytes(sha256.Size)
	if err != nil {
		return nil, fmt.Errorf("snapshot: truncated checksum")
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after checksum", len(data)-r.pos)
	}
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("snapshot: checksum mismatch (file corrupted)")
	}
	return f, nil
}

// reader is a bounds-checked cursor over the input.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("need %d bytes, %d remain", n, len(r.data)-r.pos)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) bytesU64(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.pos) {
		return nil, fmt.Errorf("need %d bytes, %d remain", n, len(r.data)-r.pos)
	}
	return r.bytes(int(n))
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint")
	}
	r.pos += n
	return v, nil
}

// Enc accumulates one section's payload. Encoders must emit only
// deterministic, instance-independent text: sorted map walks, no
// pointer values, no wall-clock time. Durations and integers are fine
// (the virtual clock is part of simulator state).
type Enc struct {
	buf bytes.Buffer
}

// NewEnc returns an empty payload builder.
func NewEnc() *Enc { return &Enc{} }

// Printf appends formatted text. Conventionally one "key=value ...\n"
// line per record.
func (e *Enc) Printf(format string, args ...any) {
	fmt.Fprintf(&e.buf, format, args...)
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf.Bytes() }

// Stater is implemented by values that can contribute their state to a
// snapshot — notably the pooled argument records sitting in the engine
// event heap (in-flight fabric deliveries), which would otherwise be
// opaque closures.
type Stater interface {
	SnapshotState(*Enc)
}

// Machine is the surface Restore drives; *sim.Engine implements it.
type Machine interface {
	Now() time.Duration
	Run(limit time.Duration) error
	Snapshot(w io.Writer) error
}

// Restore re-executes a freshly built simulation to the snapshot's
// virtual time and verifies, byte for byte, that the rebuilt state
// matches the snapshot. The caller must have reconstructed the
// simulation exactly as the original run did (same constructors, same
// seed, same processes) and not run it yet. On success the machine is
// positioned at the snapshot point and ready to continue (typically
// with Run(0)); the returned time is the snapshot's virtual time.
func Restore(data []byte, m Machine) (time.Duration, error) {
	f, err := Decode(data)
	if err != nil {
		return 0, err
	}
	if now := m.Now(); now > 0 {
		return 0, fmt.Errorf("snapshot: machine already at %v; restore needs a freshly built simulation", now)
	}
	if f.Now > 0 {
		// Run(0) means run-to-completion, so a t=0 snapshot skips replay.
		if err := m.Run(f.Now); err != nil {
			return 0, fmt.Errorf("snapshot: replay to %v failed: %w", f.Now, err)
		}
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		return 0, fmt.Errorf("snapshot: re-serializing replayed state: %w", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		return 0, fmt.Errorf("snapshot: replayed state diverges from snapshot at %v:\n%s",
			f.Now, Diff(data, buf.Bytes()))
	}
	return f.Now, nil
}

// Diff names the first difference between two snapshot images — the
// diverging section and its first differing payload line — for restore
// failure messages.
func Diff(a, b []byte) string {
	fa, ea := Decode(a)
	fb, eb := Decode(b)
	if ea != nil || eb != nil {
		return fmt.Sprintf("undecodable image(s): %v / %v", ea, eb)
	}
	if fa.Now != fb.Now || fa.Seq != fb.Seq {
		return fmt.Sprintf("header: now=%v seq=%d vs now=%v seq=%d", fa.Now, fa.Seq, fb.Now, fb.Seq)
	}
	an := sectionNames(fa)
	bn := sectionNames(fb)
	if an != bn {
		return fmt.Sprintf("section sets differ:\n  a: %s\n  b: %s", an, bn)
	}
	for i := range fa.Sections {
		sa, sb := fa.Sections[i], fb.Sections[i]
		if bytes.Equal(sa.Payload, sb.Payload) {
			continue
		}
		la := bytes.Split(sa.Payload, []byte("\n"))
		lb := bytes.Split(sb.Payload, []byte("\n"))
		for j := 0; j < len(la) || j < len(lb); j++ {
			var va, vb []byte
			if j < len(la) {
				va = la[j]
			}
			if j < len(lb) {
				vb = lb[j]
			}
			if !bytes.Equal(va, vb) {
				return fmt.Sprintf("section %q line %d:\n  snapshot: %s\n  replayed: %s", sa.Name, j+1, va, vb)
			}
		}
	}
	return "images differ only in undecoded bytes"
}

func sectionNames(f *File) string {
	var buf bytes.Buffer
	for i, s := range f.Sections {
		if i > 0 {
			buf.WriteByte(' ')
		}
		buf.WriteString(s.Name)
	}
	return buf.String()
}
