package snapshot

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecode is the codec's robustness gate: Decode must never panic
// on arbitrary bytes, and any input it accepts must re-encode to the
// exact same image (Encode→Decode→Encode byte-stability).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PICOSNAP"))
	f.Add(EncodeBytes(&File{}))
	f.Add(EncodeBytes(&File{
		Now: 1500 * time.Nanosecond,
		Seq: 42,
		Sections: []Section{
			{Name: "engine", Payload: []byte("now=1.5µs seq=42\n")},
			{Name: "fabric", Payload: []byte("ports=2\n")},
			{Name: "fabric#1", Payload: nil},
		},
	}))
	// Seed some near-valid corruptions so the corpus starts past the
	// magic check.
	valid := EncodeBytes(&File{Now: 7, Seq: 9, Sections: []Section{{Name: "s", Payload: []byte("x\n")}}})
	for i := 8; i < len(valid); i += 3 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Add(valid[:len(valid)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data) // must not panic
		if err != nil {
			return
		}
		re := EncodeBytes(dec)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not re-encode stable:\n in  %x\n out %x", data, re)
		}
	})
}
