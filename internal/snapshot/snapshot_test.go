package snapshot

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// TestGoldenHeader pins the versioned format header byte-for-byte. If
// this fails, the format changed: bump Version and keep a reader for
// the old one (or accept that old snapshot files die with a clear
// error), but never silently reinterpret bytes.
func TestGoldenHeader(t *testing.T) {
	f := &File{
		Now: 1500 * time.Nanosecond,
		Seq: 7,
		Sections: []Section{
			{Name: "engine", Payload: []byte("now=1.5µs\n")},
		},
	}
	got := EncodeBytes(f)
	// magic(8) + version=1 u32le + now=1500 i64le + seq=7 u64le
	wantHeader := "5049434f534e4150" + // "PICOSNAP"
		"01000000" +
		"dc05000000000000" +
		"0700000000000000"
	if h := hex.EncodeToString(got[:28]); h != wantHeader {
		t.Fatalf("header bytes changed:\n got  %s\n want %s", h, wantHeader)
	}
	// Section table: count=1, name len=6, "engine", payload len, payload.
	rest := got[28:]
	wantTable := append([]byte{1, 6}, []byte("engine")...)
	pay := []byte("now=1.5µs\n")
	wantTable = append(wantTable, byte(len(pay)))
	wantTable = append(wantTable, pay...)
	if !bytes.HasPrefix(rest, wantTable) {
		t.Fatalf("section table changed:\n got  %x\n want %x", rest[:len(wantTable)], wantTable)
	}
	if len(rest) != len(wantTable)+32 {
		t.Fatalf("expected exactly a 32-byte checksum after the table, file is %d bytes", len(got))
	}
}

// TestRoundTrip: Encode→Decode→Encode must be byte-stable and preserve
// every field, including empty payloads and an empty section list.
func TestRoundTrip(t *testing.T) {
	cases := []*File{
		{Now: 0, Seq: 0},
		{Now: time.Millisecond, Seq: 123, Sections: []Section{
			{Name: "engine", Payload: []byte("a=1\nb=2\n")},
			{Name: "fabric", Payload: nil},
			{Name: "fabric#1", Payload: []byte(strings.Repeat("x", 300))},
		}},
	}
	for i, f := range cases {
		b1 := EncodeBytes(f)
		dec, err := Decode(b1)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if dec.Now != f.Now || dec.Seq != f.Seq || len(dec.Sections) != len(f.Sections) {
			t.Fatalf("case %d: decoded %+v != %+v", i, dec, f)
		}
		for j, s := range f.Sections {
			if dec.Sections[j].Name != s.Name || !bytes.Equal(dec.Sections[j].Payload, s.Payload) {
				t.Fatalf("case %d: section %d mismatch", i, j)
			}
		}
		if b2 := EncodeBytes(dec); !bytes.Equal(b1, b2) {
			t.Fatalf("case %d: re-encode not byte-stable", i)
		}
	}
}

// TestDecodeRejects: malformed inputs must error, never panic, and a
// flipped bit anywhere must trip the checksum.
func TestDecodeRejects(t *testing.T) {
	good := EncodeBytes(&File{Now: time.Microsecond, Seq: 1, Sections: []Section{{Name: "s", Payload: []byte("p\n")}}})
	bad := [][]byte{
		nil,
		[]byte("PICO"),
		[]byte("NOTASNAP" + strings.Repeat("\x00", 40)),
		good[:len(good)-1], // truncated checksum
		good[:20],          // truncated header
		append(good, 0),    // trailing garbage
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d: corrupted input decoded without error", i)
		}
	}
	for i := range good {
		flip := append([]byte(nil), good...)
		flip[i] ^= 0x01
		if _, err := Decode(flip); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
	// Unknown version must be rejected by name.
	vbad := append([]byte(nil), good...)
	vbad[8] = 99
	if _, err := Decode(vbad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version: got %v", err)
	}
}

// stubMachine lets Restore be tested without a simulator: state is a
// counter that Run advances one tick per nanosecond.
type stubMachine struct {
	now   time.Duration
	ticks int64
	skew  int64 // injected divergence
	fail  error
}

func (m *stubMachine) Now() time.Duration { return m.now }

func (m *stubMachine) Run(limit time.Duration) error {
	if m.fail != nil {
		return m.fail
	}
	if limit == 0 {
		limit = m.now + 10
	}
	m.ticks += int64(limit-m.now) + m.skew
	m.now = limit
	return nil
}

func (m *stubMachine) Snapshot(w io.Writer) error {
	e := NewEnc()
	e.Printf("ticks=%d\n", m.ticks)
	return Encode(w, &File{Now: m.now, Sections: []Section{{Name: "stub", Payload: e.Bytes()}}})
}

func TestRestore(t *testing.T) {
	// Straight run to t=50, snapshot.
	m := &stubMachine{}
	if err := m.Run(50); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := m.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh machine: replays to 50 and verifies.
	m2 := &stubMachine{}
	at, err := Restore(snap.Bytes(), m2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if at != 50 || m2.now != 50 || m2.ticks != 50 {
		t.Fatalf("restored machine at now=%v ticks=%d", m2.now, m2.ticks)
	}

	// A machine that diverges during replay must be caught, and the
	// error must name the diverging section.
	m3 := &stubMachine{skew: 1}
	if _, err := Restore(snap.Bytes(), m3); err == nil {
		t.Fatal("diverging replay passed verification")
	} else if !strings.Contains(err.Error(), `"stub"`) {
		t.Fatalf("divergence error does not name the section: %v", err)
	}

	// A machine that was already run must be rejected.
	m4 := &stubMachine{}
	m4.Run(5)
	if _, err := Restore(snap.Bytes(), m4); err == nil {
		t.Fatal("restore into a non-fresh machine accepted")
	}

	// Replay errors propagate.
	m5 := &stubMachine{fail: fmt.Errorf("boom")}
	if _, err := Restore(snap.Bytes(), m5); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("replay error not propagated: %v", err)
	}
}

// TestDiff exercises the failure-message paths directly.
func TestDiff(t *testing.T) {
	a := EncodeBytes(&File{Now: 10, Seq: 1, Sections: []Section{{Name: "x", Payload: []byte("k=1\nk=2\n")}}})
	b := EncodeBytes(&File{Now: 10, Seq: 1, Sections: []Section{{Name: "x", Payload: []byte("k=1\nk=3\n")}}})
	if d := Diff(a, b); !strings.Contains(d, "line 2") || !strings.Contains(d, "k=2") || !strings.Contains(d, "k=3") {
		t.Fatalf("payload diff unhelpful: %s", d)
	}
	c := EncodeBytes(&File{Now: 11, Seq: 1})
	if d := Diff(a, c); !strings.Contains(d, "header") {
		t.Fatalf("header diff unhelpful: %s", d)
	}
	e := EncodeBytes(&File{Now: 10, Seq: 1, Sections: []Section{{Name: "y", Payload: []byte("k=1\n")}}})
	if d := Diff(a, e); !strings.Contains(d, "section sets differ") {
		t.Fatalf("section-set diff unhelpful: %s", d)
	}
}
