# picodriver-sim build targets.

GO ?= go

.PHONY: all build test vet bench artifacts artifacts-paper examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table/figure (text + CSV) at the default scale.
artifacts:
	$(GO) run ./cmd/experiments -scale small -out artifacts

# The paper's full sweeps (slow).
artifacts-paper:
	$(GO) run ./cmd/experiments -scale paper -out artifacts-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/structextract
	$(GO) run ./examples/splitdriver
	$(GO) run ./examples/halo3d -nodes 2 -rpn 4 -steps 3

clean:
	rm -rf artifacts artifacts-paper
