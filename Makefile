# picodriver-sim build targets.

GO ?= go

.PHONY: all build test vet check bench bench-gate simtest trace-smoke verbs-trace-smoke reliability-smoke failover-smoke tenancy-smoke snapshot-smoke shard-smoke artifacts artifacts-paper examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full static + race gate: the parallel experiment runner makes ./...
# the first real concurrent exercise of cross-engine isolation. -short
# keeps the simtest battery at its default 36 cells.
check: vet
	$(GO) test -race -short ./...

# Property-based simulation testing. Default: the short battery (one
# randomized cell grid across all three OS configs). SOAK=1 runs the
# long parallel soak via cmd/simtest; SEED overrides the base seed.
SEED ?= 1
simtest:
ifeq ($(SOAK),1)
	$(GO) run ./cmd/simtest -seed $(SEED) -cells 100
else
	$(GO) test ./internal/simtest -count=1 -seed=$(SEED) -v -run 'TestSim'
endif

# Trace export smoke test: two same-seed traced runs must be
# byte-identical Chrome trace JSON, and the output must pass the
# tracecheck validator (parses, non-empty, Perfetto-required fields).
trace-smoke:
	$(GO) run ./cmd/profile -what none -nodes 2 -rpn 4 -trace /tmp/picodriver-trace-a.json >/dev/null
	$(GO) run ./cmd/profile -what none -nodes 2 -rpn 4 -trace /tmp/picodriver-trace-b.json >/dev/null
	cmp /tmp/picodriver-trace-a.json /tmp/picodriver-trace-b.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-trace-a.json
	rm -f /tmp/picodriver-trace-a.json /tmp/picodriver-trace-b.json

# Same gate over the one-sided RDMA path: a traced LAMMPS-RMA run
# exercises the verbs doorbell/dma/cqe spans, and two same-seed runs
# must serialize to byte-identical Chrome traces.
verbs-trace-smoke:
	$(GO) run ./cmd/profile -what none -nodes 2 -rpn 4 -trace-app LAMMPS-RMA -trace /tmp/picodriver-verbs-a.json >/dev/null
	$(GO) run ./cmd/profile -what none -nodes 2 -rpn 4 -trace-app LAMMPS-RMA -trace /tmp/picodriver-verbs-b.json >/dev/null
	cmp /tmp/picodriver-verbs-a.json /tmp/picodriver-verbs-b.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-verbs-a.json
	rm -f /tmp/picodriver-verbs-a.json /tmp/picodriver-verbs-b.json

# Lossy-fabric reliability gate: two same-seed traced ping-pong runs at
# 5% packet loss must produce byte-identical bandwidth tables (payloads
# are verified against a reference pattern inside the experiment) and
# byte-identical Chrome traces containing the recovery spans. 5% (not
# lower) so the traced 64KB cell's fixed RNG stream observes drops —
# the retransmit-span grep below is meaningless on a drop-free trace.
reliability-smoke:
	$(GO) run ./cmd/pingpong -sizes 32K -reps 6 -loss 0.05 -trace /tmp/picodriver-rel-a.json | sed 's/-> .*//' > /tmp/picodriver-rel-a.txt
	$(GO) run ./cmd/pingpong -sizes 32K -reps 6 -loss 0.05 -trace /tmp/picodriver-rel-b.json | sed 's/-> .*//' > /tmp/picodriver-rel-b.txt
	cmp /tmp/picodriver-rel-a.txt /tmp/picodriver-rel-b.txt
	cmp /tmp/picodriver-rel-a.json /tmp/picodriver-rel-b.json
	grep -q retransmit /tmp/picodriver-rel-a.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-rel-a.json
	rm -f /tmp/picodriver-rel-a.json /tmp/picodriver-rel-b.json /tmp/picodriver-rel-a.txt /tmp/picodriver-rel-b.txt

# Live-failover gate: two same-seed traced dual-rail failover cells
# must print byte-identical measurement tables and serialize
# byte-identical Chrome traces containing the health machine's
# failover and fallback spans; and a no-fault run must still emit the
# checked-in Figure 4 artifact byte-for-byte (the health machine is
# invisible on a loss-free fabric).
failover-smoke:
	$(GO) run ./cmd/pingpong -failover -trace /tmp/picodriver-fo-a.json | sed 's/-> .*//' > /tmp/picodriver-fo-a.txt
	$(GO) run ./cmd/pingpong -failover -trace /tmp/picodriver-fo-b.json | sed 's/-> .*//' > /tmp/picodriver-fo-b.txt
	cmp /tmp/picodriver-fo-a.txt /tmp/picodriver-fo-b.txt
	cmp /tmp/picodriver-fo-a.json /tmp/picodriver-fo-b.json
	grep -q '"failover"' /tmp/picodriver-fo-a.json
	grep -q '"fallback"' /tmp/picodriver-fo-a.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-fo-a.json
	rm -rf /tmp/picodriver-fo-nofault
	$(GO) run ./cmd/experiments -only fig4 -out /tmp/picodriver-fo-nofault >/dev/null
	cmp artifacts/fig4.txt /tmp/picodriver-fo-nofault/fig4.txt
	rm -rf /tmp/picodriver-fo-a.json /tmp/picodriver-fo-b.json \
		/tmp/picodriver-fo-a.txt /tmp/picodriver-fo-b.txt /tmp/picodriver-fo-nofault

# Multi-tenancy gate: two same-seed tenancy sweeps must emit
# byte-identical interference tables (text and CSV), and the traced
# packed noisy-neighbor cell (pingpong -neighbor) must be deterministic
# and pass the tracecheck validator. The sweep's own hard checks assert
# nonzero packed p99 inflation, spread recovering below packed, and
# congestion-control activity (marks/stalls) on the packed cell.
tenancy-smoke:
	rm -rf /tmp/picodriver-ten-a /tmp/picodriver-ten-b
	$(GO) run ./cmd/experiments -only tenancy -out /tmp/picodriver-ten-a >/dev/null
	$(GO) run ./cmd/experiments -only tenancy -out /tmp/picodriver-ten-b >/dev/null
	cmp /tmp/picodriver-ten-a/tenancy.txt /tmp/picodriver-ten-b/tenancy.txt
	cmp /tmp/picodriver-ten-a/tenancy.csv /tmp/picodriver-ten-b/tenancy.csv
	$(GO) run ./cmd/pingpong -neighbor -trace /tmp/picodriver-ten-a.json | sed 's/-> .*//' > /tmp/picodriver-ten-a.txt
	$(GO) run ./cmd/pingpong -neighbor -trace /tmp/picodriver-ten-b.json | sed 's/-> .*//' > /tmp/picodriver-ten-b.txt
	cmp /tmp/picodriver-ten-a.txt /tmp/picodriver-ten-b.txt
	cmp /tmp/picodriver-ten-a.json /tmp/picodriver-ten-b.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-ten-a.json
	rm -rf /tmp/picodriver-ten-a /tmp/picodriver-ten-b \
		/tmp/picodriver-ten-a.json /tmp/picodriver-ten-b.json \
		/tmp/picodriver-ten-a.txt /tmp/picodriver-ten-b.txt

# Checkpoint/restore gate: a traced Figure 4 cell checkpointed at half
# its virtual time and resumed from the snapshot must print the same
# statistics and serialize a byte-identical Chrome trace as the
# straight run; and the experiment-level -checkpoint/-resume manifest
# must re-emit byte-identical artifacts without re-running.
snapshot-smoke:
	$(GO) run ./cmd/snapcheck -mode straight -trace /tmp/picodriver-snap-a.json > /tmp/picodriver-snap-a.txt
	$(GO) run ./cmd/snapcheck -mode checkpoint -snap /tmp/picodriver-mid.snap
	$(GO) run ./cmd/snapcheck -mode resume -snap /tmp/picodriver-mid.snap -trace /tmp/picodriver-snap-b.json > /tmp/picodriver-snap-b.txt
	cmp /tmp/picodriver-snap-a.txt /tmp/picodriver-snap-b.txt
	cmp /tmp/picodriver-snap-a.json /tmp/picodriver-snap-b.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-snap-a.json
	rm -rf /tmp/picodriver-ckpt-a /tmp/picodriver-ckpt-b /tmp/picodriver.ckpt
	$(GO) run ./cmd/experiments -only fig4 -out /tmp/picodriver-ckpt-a -checkpoint /tmp/picodriver.ckpt >/dev/null
	$(GO) run ./cmd/experiments -only fig4 -out /tmp/picodriver-ckpt-b -checkpoint /tmp/picodriver.ckpt -resume >/dev/null
	cmp /tmp/picodriver-ckpt-a/fig4.txt /tmp/picodriver-ckpt-b/fig4.txt
	cmp /tmp/picodriver-ckpt-a/fig4.csv /tmp/picodriver-ckpt-b/fig4.csv
	rm -rf /tmp/picodriver-snap-a.txt /tmp/picodriver-snap-b.txt /tmp/picodriver-snap-a.json \
		/tmp/picodriver-snap-b.json /tmp/picodriver-mid.snap \
		/tmp/picodriver-ckpt-a /tmp/picodriver-ckpt-b /tmp/picodriver.ckpt

# Sharded-engine gate. Three legs: the bigscale sweep runs one seeded
# UMT2013 workload at Shards=1/2/4 and fails internally on any digest
# divergence; a user-visible check that a sharded ping-pong run prints
# the same table as the classic engine; and two same-seed sharded
# traced runs must serialize byte-identical Chrome traces that pass
# the tracecheck validator (the shard round-robin makes span emission
# order a pure function of workload and shard count).
shard-smoke:
	rm -rf /tmp/picodriver-shard
	$(GO) run ./cmd/experiments -only bigscale -out /tmp/picodriver-shard >/dev/null
	$(GO) run ./cmd/pingpong -sizes 64K -reps 4 | sed 's/-> .*//' > /tmp/picodriver-shard-1.txt
	$(GO) run ./cmd/pingpong -sizes 64K -reps 4 -shards 2 | sed 's/-> .*//' > /tmp/picodriver-shard-2.txt
	cmp /tmp/picodriver-shard-1.txt /tmp/picodriver-shard-2.txt
	$(GO) run ./cmd/profile -what none -nodes 4 -rpn 2 -shards 4 -trace /tmp/picodriver-shard-a.json >/dev/null
	$(GO) run ./cmd/profile -what none -nodes 4 -rpn 2 -shards 4 -trace /tmp/picodriver-shard-b.json >/dev/null
	cmp /tmp/picodriver-shard-a.json /tmp/picodriver-shard-b.json
	$(GO) run ./cmd/tracecheck /tmp/picodriver-shard-a.json
	rm -rf /tmp/picodriver-shard /tmp/picodriver-shard-1.txt /tmp/picodriver-shard-2.txt \
		/tmp/picodriver-shard-a.json /tmp/picodriver-shard-b.json

# One testing.B benchmark per paper table/figure, plus ablations.
# Writes BENCH_pr6.json; BENCH_seed.json is the frozen pre-pooling
# baseline and must not be regenerated. -benchtime 3x keeps allocs/op
# stable for the sub-second benches (allocs are averaged per op).
bench:
	$(GO) test -bench . -benchtime 3x -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_pr6.json

# Allocation regression gate: same run as `bench`, but fails when any
# benchmark's allocs/op exceeds its checked-in ceiling in
# bench_budget.json.
bench-gate:
	$(GO) test -bench . -benchtime 3x -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_pr6.json -budget bench_budget.json

# Regenerate every table/figure (text + CSV) at the default scale.
artifacts:
	$(GO) run ./cmd/experiments -scale small -out artifacts

# The paper's full sweeps (slow).
artifacts-paper:
	$(GO) run ./cmd/experiments -scale paper -out artifacts-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/structextract
	$(GO) run ./examples/splitdriver
	$(GO) run ./examples/halo3d -nodes 2 -rpn 4 -steps 3

clean:
	rm -rf artifacts artifacts-paper
