# picodriver-sim build targets.

GO ?= go

.PHONY: all build test vet check bench artifacts artifacts-paper examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full static + race gate: the parallel experiment runner makes ./...
# the first real concurrent exercise of cross-engine isolation.
check: vet
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure, plus ablations.
# Writes BENCH_seed.json so later changes have a perf trajectory
# baseline.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_seed.json

# Regenerate every table/figure (text + CSV) at the default scale.
artifacts:
	$(GO) run ./cmd/experiments -scale small -out artifacts

# The paper's full sweeps (slow).
artifacts-paper:
	$(GO) run ./cmd/experiments -scale paper -out artifacts-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/structextract
	$(GO) run ./examples/splitdriver
	$(GO) run ./examples/halo3d -nodes 2 -rpn 4 -steps 3

clean:
	rm -rf artifacts artifacts-paper
