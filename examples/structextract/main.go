// structextract: the §3.2 porting workflow end to end.
//
//  1. Read the HFI1 module's DWARF debugging information and generate
//     the padded-union header for sdma_state (the paper's Listing 1).
//
//  2. Simulate an Intel driver update that reshuffles the structure,
//     re-extract, and show the new offsets — the "porting effort on the
//     order of hours" claim.
//
//  3. Show what the extraction prevents: accessing a structure through
//     the old (stale) offsets reads the wrong field.
//
//     go run ./examples/structextract
package main

import (
	"fmt"
	"log"

	"repro/internal/dwarfx"
	"repro/internal/hfi"
	"repro/internal/kmem"
	"repro/internal/kstruct"
	"repro/internal/mem"
	"repro/internal/vas"
)

func main() {
	fields := []string{"current_state", "go_s99_running", "previous_state"}

	// --- Step 1: extract from the shipped driver version. ---
	regV1 := hfi.BuildRegistry(hfi.DriverVersion)
	blobV1, err := hfi.BuildDWARFBlob(regV1)
	if err != nil {
		log.Fatal(err)
	}
	rootV1, err := dwarfx.Decode(blobV1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module debug info: %s (%d bytes)\n\n", dwarfx.Producer(rootV1), len(blobV1))
	layoutV1, err := dwarfx.ExtractStruct(rootV1, "sdma_state", fields)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated header (the paper's Listing 1):")
	fmt.Println(dwarfx.GenerateCHeader(layoutV1))

	// --- Step 2: the vendor ships an update with a reshuffled layout. ---
	regV2 := kstruct.NewRegistry("hfi1-10.9-2")
	regV2.MustAdd(&kstruct.Layout{
		Name:     "sdma_state",
		ByteSize: 96, // grew: new tracing fields pushed everything down
		Fields: []kstruct.Field{
			{Name: "ss_lock", Offset: 0, Kind: kstruct.Bytes, ByteLen: 40, TypeName: "spinlock_t"},
			{Name: "trace_buf", Offset: 40, Kind: kstruct.Ptr, TypeName: "void *"},
			{Name: "current_state", Offset: 56, Kind: kstruct.Enum, TypeName: "sdma_states"},
			{Name: "go_s99_running", Offset: 64, Kind: kstruct.U32},
			{Name: "previous_state", Offset: 68, Kind: kstruct.Enum, TypeName: "sdma_states"},
		},
	})
	blobV2, err := hfi.BuildDWARFBlob(regV2)
	if err != nil {
		log.Fatal(err)
	}
	rootV2, err := dwarfx.Decode(blobV2)
	if err != nil {
		log.Fatal(err)
	}
	layoutV2, err := dwarfx.ExtractStruct(rootV2, "sdma_state", fields)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the %s update, re-extraction yields:\n", dwarfx.Producer(rootV2))
	for _, f := range layoutV2.Fields {
		old := layoutV1.MustField(f.Name)
		fmt.Printf("  %-16s offset %2d -> %2d\n", f.Name, old.Offset, f.Offset)
	}

	// --- Step 3: what stale offsets would do. ---
	pm, err := mem.NewPhysMem(mem.Region{Base: 0, Size: 8 << 20, Kind: mem.DDR4, Owner: "k"})
	if err != nil {
		log.Fatal(err)
	}
	space, err := kmem.NewSpace("k", vas.LinuxLayout(), pm.Partition("k"), []int{0})
	if err != nil {
		log.Fatal(err)
	}
	// The NEW driver writes through the NEW layout...
	authoritative, _ := regV2.Lookup("sdma_state")
	obj, err := kstruct.New(space, authoritative, 0)
	if err != nil {
		log.Fatal(err)
	}
	const running = 9 // sdma_state s99_running
	if err := obj.SetU("current_state", running); err != nil {
		log.Fatal(err)
	}
	// ...re-extracted offsets read it back correctly:
	fresh := kstruct.Obj{Space: space, Addr: obj.Addr, Layout: layoutV2}
	v, _ := fresh.GetU("current_state")
	fmt.Printf("\nre-extracted layout reads current_state = %d (correct)\n", v)
	// ...while the stale v1 header silently reads garbage:
	stale := kstruct.Obj{Space: space, Addr: obj.Addr, Layout: layoutV1}
	w, _ := stale.GetU("current_state")
	fmt.Printf("stale v1 offsets read current_state = %d (silently wrong — the §3.2 hazard)\n", w)
}
