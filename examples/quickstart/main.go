// Quickstart: boot a two-node multi-kernel cluster under each OS
// configuration, exchange a checksummed 1 MB message between two ranks,
// and print the transfer latency — the smallest end-to-end use of the
// library's public surface.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/psm"
	"repro/internal/sim"
)

const size = 1 << 20

func main() {
	for _, os := range cluster.AllOSTypes {
		lat, err := exchange(os)
		if err != nil {
			log.Fatalf("%v: %v", os, err)
		}
		fmt.Printf("%-14s 1MB exchange: %8v  (%.2f GB/s)\n",
			os, lat.Round(time.Microsecond), float64(size)/lat.Seconds()/1e9)
	}
}

func exchange(os cluster.OSType) (time.Duration, error) {
	// 1. Build the cluster: two KNL-style nodes, OmniPath fabric, the
	//    chosen OS configuration (Linux, McKernel, or McKernel with the
	//    HFI PicoDriver).
	cl, err := cluster.New(cluster.Config{
		Nodes: 2, OS: os, Params: model.Default(), Seed: 1,
	})
	if err != nil {
		return 0, err
	}

	var lat time.Duration
	var failure error
	book := psm.MapBook{}
	ready := sim.NewWaitGroup(cl.E)
	ready.Add(2)

	for rank := 0; rank < 2; rank++ {
		rank := rank
		osops := cl.Nodes[rank].NewRankOS(rank)
		cl.E.Go(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			// 2. Open a PSM endpoint: this opens /dev/hfi1 (offloaded
			//    to Linux on McKernel), maps the context areas and
			//    registers the rank's address.
			ep, err := psm.NewEndpoint(p, osops, rank, book, false)
			if err != nil {
				failure = err
				ready.Done()
				return
			}
			book[rank] = psm.Addr{Node: osops.NodeID(), Ctx: ep.CtxID}
			ready.Done()
			ready.Wait(p)

			// 3. Allocate a user buffer (contiguous+pinned on McKernel,
			//    scattered 4K pages on Linux) and move real bytes.
			buf, err := osops.MmapAnon(p, size)
			if err != nil {
				failure = err
				return
			}
			proc := osops.Proc()
			if rank == 0 {
				payload := bytes.Repeat([]byte{0x5A}, size)
				if err := proc.WriteAt(buf, payload); err != nil {
					failure = err
					return
				}
				start := p.Now()
				if err := ep.Send(p, 1, 42, buf, size); err != nil {
					failure = err
					return
				}
				lat = p.Now() - start
			} else {
				if err := ep.Recv(p, 0, 42, buf, size); err != nil {
					failure = err
					return
				}
				got := make([]byte, size)
				if err := proc.ReadAt(buf, got); err != nil {
					failure = err
					return
				}
				for i, b := range got {
					if b != 0x5A {
						failure = fmt.Errorf("payload corrupted at byte %d", i)
						return
					}
				}
			}
		})
	}
	// 4. Drive the simulation to completion.
	if err := cl.E.Run(0); err != nil {
		return 0, err
	}
	if failure != nil {
		return 0, failure
	}
	return lat, nil
}
