// halo3d: a domain-specific application written against the MPI API — a
// 3-D Jacobi-style stencil with halo exchanges whose face sizes are
// chosen so x faces use rendezvous (driver fast path), y faces use eager
// SDMA and the z direction stays node-local. It prints per-OS runtimes
// and the MPI profile, illustrating how an application developer would
// evaluate the PicoDriver for their own workload.
//
//	go run ./examples/halo3d [-nodes 4] [-rpn 8] [-steps 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/psm"
	"repro/internal/uproc"
)

func main() {
	nodes := flag.Int("nodes", 4, "compute nodes")
	rpn := flag.Int("rpn", 8, "ranks per node")
	steps := flag.Int("steps", 5, "timesteps")
	flag.Parse()

	fmt.Printf("halo3d: %d nodes x %d ranks, %d steps\n\n", *nodes, *rpn, *steps)
	var linux time.Duration
	for _, os := range cluster.AllOSTypes {
		res, err := run(os, *nodes, *rpn, *steps)
		if err != nil {
			log.Fatalf("%v: %v", os, err)
		}
		rel := ""
		if os == cluster.OSLinux {
			linux = res.Elapsed
		} else {
			rel = fmt.Sprintf("  (%.1f%% of Linux performance)",
				100*linux.Seconds()/res.Elapsed.Seconds())
		}
		fmt.Printf("%-14s %10v%s\n", os, res.Elapsed.Round(time.Microsecond), rel)
		fmt.Println("  top MPI calls:")
		for _, e := range res.MPI.Top(3) {
			fmt.Printf("    %-14s %12v %5.1f%%\n", e.Name, e.Time.Round(time.Microsecond), 100*e.Share)
		}
	}
}

func run(os cluster.OSType, nodes, rpn, steps int) (*mpi.JobResult, error) {
	cl, err := cluster.New(cluster.Config{
		Nodes: nodes, OS: os, Params: model.Default(), Seed: 7, Synthetic: true,
	})
	if err != nil {
		return nil, err
	}
	const (
		faceX = 256 << 10 // rendezvous: TID registration + SDMA writev
		faceY = 32 << 10  // eager SDMA: one writev per message
	)
	return mpi.RunJob(cl, rpn, func(c *mpi.Comm) error {
		ny := c.RanksPerNode
		nx := c.Size / ny
		x, y := c.Rank/ny, c.Rank%ny
		buf, err := c.MmapAnon(4 * faceX)
		if err != nil {
			return err
		}
		at := func(i int) uproc.VirtAddr { return buf + uproc.VirtAddr(i*faceX) }
		neighbor := func(dx, dy int) int {
			px, py := x+dx, y+dy
			if px < 0 || px >= nx || py < 0 || py >= ny {
				return -1
			}
			return px*ny + py
		}
		for step := 0; step < steps; step++ {
			c.Compute(900 * time.Microsecond)
			// Cross-node x faces (rendezvous) and intra-node y faces
			// (eager) exchanged concurrently.
			type xfer struct {
				nb   int
				size uint64
			}
			var reqs []*psm.Request
			for d, xf := range []xfer{
				{neighbor(1, 0), faceX}, {neighbor(-1, 0), faceX},
				{neighbor(0, 1), faceY}, {neighbor(0, -1), faceY},
			} {
				if xf.nb < 0 {
					continue
				}
				tag := uint64(100 + step*8 + d)
				rr, err := c.Irecv(xf.nb, tag^1, at(d%2), xf.size)
				if err != nil {
					return err
				}
				sr, err := c.Isend(xf.nb, tag, at(2+d%2), xf.size)
				if err != nil {
					return err
				}
				reqs = append(reqs, rr, sr)
			}
			if err := c.Waitall(reqs); err != nil {
				return err
			}
			// Residual norm.
			if err := c.Allreduce(8); err != nil {
				return err
			}
		}
		return nil
	})
}
