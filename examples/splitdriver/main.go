// splitdriver: the §3 generality claim in action. A second, synthetic
// Linux device driver — "KXP", a compression accelerator whose job
// submission (an ioctl that pins a user buffer and enqueues it) is
// performance-critical — is ported to McKernel with the PicoDriver
// framework:
//
//  1. The Linux KXP driver ships DWARF debugging information for its
//     private structures.
//  2. dwarf-extract-struct recovers the two structures the fast path
//     touches.
//  3. A ~60-line fast path submits jobs from the LWK core, cooperating
//     with the unmodified Linux driver through the unified address
//     space and a shared ticket spinlock.
//
// The example prints the per-job submission latency offloaded vs fast
// path.
//
//	go run ./examples/splitdriver
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dwarfx"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/kstruct"
	"repro/internal/linux"
	"repro/internal/mckernel"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/uproc"
)

// KXP ioctl commands: one fast-path candidate, the rest administrative.
const (
	kxpCmdSubmit  uint32 = 0xF001 // performance critical
	kxpCmdStatus  uint32 = 0xF002
	kxpCmdVersion uint32 = 0xF003
)

const jobBytes = 64 << 10

// kxpRegistry is the authoritative layout set compiled into the KXP
// module binary.
func kxpRegistry() *kstruct.Registry {
	reg := kstruct.NewRegistry("kxp-2.1")
	reg.MustAdd(&kstruct.Layout{
		Name:     "kxp_device",
		ByteSize: 128,
		Fields: []kstruct.Field{
			{Name: "queue_lock", Offset: 0, Kind: kstruct.Bytes, ByteLen: 8, TypeName: "spinlock_t"},
			{Name: "queue_tail", Offset: 8, Kind: kstruct.U64},
			{Name: "jobs_submitted", Offset: 16, Kind: kstruct.U64},
			{Name: "fw_version", Offset: 24, Kind: kstruct.U32},
			{Name: "error_count", Offset: 32, Kind: kstruct.U64},
		},
	})
	reg.MustAdd(&kstruct.Layout{
		Name:     "kxp_filedata",
		ByteSize: 64,
		Fields: []kstruct.Field{
			{Name: "dev", Offset: 0, Kind: kstruct.Ptr, TypeName: "struct kxp_device *"},
			{Name: "jobs", Offset: 8, Kind: kstruct.U64},
			{Name: "flags", Offset: 16, Kind: kstruct.U64},
		},
	})
	return reg
}

// kxpDriver is the unmodified Linux driver.
type kxpDriver struct {
	k     *linux.Kernel
	reg   *kstruct.Registry
	blob  []byte
	devVA kmem.VirtAddr
}

func newKXPDriver(k *linux.Kernel) (*kxpDriver, error) {
	reg := kxpRegistry()
	root, err := buildBlob(reg)
	if err != nil {
		return nil, err
	}
	d := &kxpDriver{k: k, reg: reg, blob: root}
	devLayout, err := reg.Lookup("kxp_device")
	if err != nil {
		return nil, err
	}
	dev, err := kstruct.New(k.Space, devLayout, k.Pool.CPUs()[0])
	if err != nil {
		return nil, err
	}
	if err := dev.SetU("fw_version", 21); err != nil {
		return nil, err
	}
	lockVA, err := dev.FieldAddr("queue_lock", 0)
	if err != nil {
		return nil, err
	}
	if _, err := kernel.NewSpinLock(k.Space, lockVA, kernel.LinuxSpinLockLayout); err != nil {
		return nil, err
	}
	d.devVA = dev.Addr
	return d, nil
}

// buildBlob compiles the registry into the module's debug info blob.
func buildBlob(reg *kstruct.Registry) ([]byte, error) {
	root, err := dwarfx.Build(reg)
	if err != nil {
		return nil, err
	}
	return dwarfx.Encode(root)
}

func (d *kxpDriver) obj(name string, va kmem.VirtAddr) kstruct.Obj {
	l, err := d.reg.Lookup(name)
	if err != nil {
		panic(err)
	}
	return kstruct.Obj{Space: d.k.Space, Addr: va, Layout: l}
}

func (d *kxpDriver) Open(ctx *kernel.Ctx, f *linux.File) error {
	ctx.Spend(5 * time.Microsecond)
	l, err := d.reg.Lookup("kxp_filedata")
	if err != nil {
		return err
	}
	fd, err := kstruct.New(d.k.Space, l, ctx.CPU)
	if err != nil {
		return err
	}
	if err := fd.SetPtr("dev", d.devVA); err != nil {
		return err
	}
	f.Private = fd.Addr
	return nil
}

func (d *kxpDriver) Release(ctx *kernel.Ctx, f *linux.File) error {
	return d.k.Space.Kfree(f.Private, ctx.CPU)
}

func (d *kxpDriver) Writev(ctx *kernel.Ctx, f *linux.File, iov []linux.IOVec) (uint64, error) {
	return 0, fmt.Errorf("kxp: writev unsupported")
}

// Ioctl: job submission pins the user buffer (get_user_pages) and
// advances the device queue under the queue lock.
func (d *kxpDriver) Ioctl(ctx *kernel.Ctx, f *linux.File, cmd uint32, arg uproc.VirtAddr) (uint64, error) {
	switch cmd {
	case kxpCmdSubmit:
		ctx.Spend(800 * time.Nanosecond)
		pages, err := d.k.GetUserPages(ctx, f.Proc, arg, jobBytes)
		if err != nil {
			return 0, err
		}
		defer d.k.PutUserPages(f.Proc, pages)
		ctx.Spend(time.Duration(len(pages)) * 120 * time.Nanosecond) // per-descriptor programming
		return d.enqueue(ctx, d.k.Space, d.reg, f.Private)
	case kxpCmdStatus:
		dev := d.obj("kxp_device", d.devVA)
		return dev.GetU("jobs_submitted")
	case kxpCmdVersion:
		return 21, nil
	}
	return 0, fmt.Errorf("kxp: unknown ioctl %#x", cmd)
}

// enqueue is the layout-driven queue protocol shared (by construction,
// not by import) with the fast path.
func (d *kxpDriver) enqueue(ctx *kernel.Ctx, space *kmem.Space, reg *kstruct.Registry, fdataVA kmem.VirtAddr) (uint64, error) {
	return kxpEnqueue(ctx, space, reg, fdataVA)
}

func kxpEnqueue(ctx *kernel.Ctx, space *kmem.Space, reg *kstruct.Registry, fdataVA kmem.VirtAddr) (uint64, error) {
	fdl, err := reg.Lookup("kxp_filedata")
	if err != nil {
		return 0, err
	}
	fd := kstruct.Obj{Space: space, Addr: fdataVA, Layout: fdl}
	devVA, err := fd.GetPtr("dev")
	if err != nil {
		return 0, err
	}
	devl, err := reg.Lookup("kxp_device")
	if err != nil {
		return 0, err
	}
	dev := kstruct.Obj{Space: space, Addr: devVA, Layout: devl}
	lockVA, err := dev.FieldAddr("queue_lock", 0)
	if err != nil {
		return 0, err
	}
	lock := &kernel.SpinLock{Space: space, Addr: lockVA,
		Layout: kernel.LinuxSpinLockLayout, SpinDelay: kernel.DefaultSpinDelay}
	if err := lock.Lock(ctx.P); err != nil {
		return 0, err
	}
	defer lock.Unlock()
	tail, err := dev.GetU("queue_tail")
	if err != nil {
		return 0, err
	}
	if err := dev.SetU("queue_tail", tail+1); err != nil {
		return 0, err
	}
	jobs, err := dev.GetU("jobs_submitted")
	if err != nil {
		return 0, err
	}
	if err := dev.SetU("jobs_submitted", jobs+1); err != nil {
		return 0, err
	}
	own, err := fd.GetU("jobs")
	if err != nil {
		return 0, err
	}
	return tail, fd.SetU("jobs", own+1)
}

func (d *kxpDriver) Mmap(ctx *kernel.Ctx, f *linux.File, kind uint32, length uint64) (uproc.VirtAddr, error) {
	return 0, fmt.Errorf("kxp: mmap unsupported")
}

func (d *kxpDriver) Poll(ctx *kernel.Ctx, f *linux.File) (uint32, error) { return 0, nil }

// kxpPico is the ported fast path: the entire LWK-side driver.
type kxpPico struct {
	space *kmem.Space
	reg   *kstruct.Registry // DWARF-extracted
	Fast  uint64
}

func newKXPPico(fw *core.Framework, blob []byte) (*kxpPico, error) {
	reg, err := core.ExtractLayouts(blob, "kxp-pico", map[string][]string{
		"kxp_device":   {"queue_lock", "queue_tail", "jobs_submitted"},
		"kxp_filedata": {"dev", "jobs"},
	})
	if err != nil {
		return nil, err
	}
	return &kxpPico{space: fw.CallbackSpace(), reg: reg}, nil
}

func (kp *kxpPico) fastPath() *mckernel.FastPath {
	return &mckernel.FastPath{
		Ioctl: func(ctx *kernel.Ctx, f *linux.File, cmd uint32, arg uproc.VirtAddr) (uint64, bool, error) {
			if cmd != kxpCmdSubmit {
				return 0, false, nil // everything else stays in Linux
			}
			ctx.Spend(300 * time.Nanosecond)
			// McKernel mappings are pinned: walk page tables instead of
			// get_user_pages.
			vma, ok := f.Proc.VMAOf(arg)
			if !ok || !vma.Pinned {
				return 0, false, nil
			}
			exts, err := f.Proc.PT.WalkExtents(arg, jobBytes)
			if err != nil {
				return 0, true, err
			}
			ctx.Spend(time.Duration(len(exts)) * 120 * time.Nanosecond)
			tail, err := kxpEnqueue(ctx, kp.space, kp.reg, f.Private)
			if err != nil {
				return 0, true, err
			}
			kp.Fast++
			return tail, true, nil
		},
	}
}

func main() {
	cl, err := cluster.New(cluster.Config{
		Nodes: 1, OS: cluster.OSMcKernelHFI, Params: model.Default(), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := cl.Nodes[0]

	// Module load: the unmodified Linux KXP driver registers with the VFS.
	drv, err := newKXPDriver(n.Lin)
	if err != nil {
		log.Fatal(err)
	}
	if err := n.Lin.RegisterDevice("/dev/kxp0", drv); err != nil {
		log.Fatal(err)
	}

	// Port the fast path with the PicoDriver framework.
	fw, err := core.NewFramework(n.Lin, n.Mck)
	if err != nil {
		log.Fatal(err)
	}
	pico, err := newKXPPico(fw, drv.blob)
	if err != nil {
		log.Fatal(err)
	}

	const jobs = 64
	measure := func(label string) time.Duration {
		var total time.Duration
		proc := n.Mck.NewProcess("app")
		cl.E.Go("app", func(p *sim.Proc) {
			ctx := &kernel.Ctx{P: p, CPU: n.AppCPUs()[0]}
			f, err := n.Mck.Open(ctx, proc, "/dev/kxp0")
			if err != nil {
				log.Fatal(err)
			}
			buf, err := n.Mck.MmapAnon(ctx, proc, jobBytes)
			if err != nil {
				log.Fatal(err)
			}
			start := p.Now()
			for i := 0; i < jobs; i++ {
				if _, err := n.Mck.Ioctl(ctx, f, kxpCmdSubmit, buf); err != nil {
					log.Fatal(err)
				}
			}
			total = p.Now() - start
			// The administrative status call (never ported) still
			// reaches the Linux driver transparently.
			count, err := n.Mck.Ioctl(ctx, f, kxpCmdStatus, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s %8v/job   (device counts %d jobs)\n",
				label, (total / jobs).Round(10*time.Nanosecond), count)
		})
		if err := cl.E.Run(0); err != nil {
			log.Fatal(err)
		}
		return total
	}

	offloaded := measure("offloaded (original)")
	if err := fw.Attach("/dev/kxp0", pico.fastPath()); err != nil {
		log.Fatal(err)
	}
	fast := measure("fast path (KXP PicoDriver)")
	fmt.Printf("\nspeedup: %.1fx; %d submissions served by the fast path\n",
		offloaded.Seconds()/fast.Seconds(), pico.Fast)
}
