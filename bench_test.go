package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§4), plus ablation benches for the design
// decisions called out in DESIGN.md. Each benchmark runs the experiment
// at a reduced scale and reports the paper's figures of merit as custom
// metrics (bandwidth in MB/s, performance relative to Linux in percent).
//
// Regenerate everything at larger scale with:
//
//	go run ./cmd/experiments -scale paper -out artifacts/

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hfi"
	"repro/internal/ihk"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/miniapps"
	"repro/internal/mlx"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pagetable"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/uproc"
)

// benchPool fans each experiment's simulation cells across all cores,
// matching cmd/experiments' default. Results are identical to a
// single-worker run by the runner's deterministic-merge contract.
var benchPool = runner.New(0)

// benchScale keeps single-iteration runtimes around a second.
func benchScale() experiments.Scale {
	sc := experiments.SmallScale()
	sc.AppNodes = []int{2}
	sc.QBoxNodes = []int{4}
	sc.RanksPerNode = 8
	sc.ProfileNodes = 2
	sc.ProfileRPN = 8
	sc.PingPongSizes = []uint64{4 << 20}
	sc.PingPongReps = 3
	sc.VerbsSizes = []uint64{1 << 20}
	sc.VerbsReps = 3
	sc.LossRates = []float64{0.02}
	sc.ReliabilitySizes = []uint64{32 << 10}
	sc.TenancyMsgs = 60
	return sc
}

// benchConfig is the shared-pool experiment configuration every
// benchmark runs under.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: benchScale(), Pool: benchPool}
}

// fig4Bench regenerates the Figure 4 headline point: 4 MB ping-pong
// bandwidth per OS configuration, with the three OS cells spread over
// the given pool.
func fig4Bench(b *testing.B, pool *runner.Pool) {
	b.Helper()
	cfg := benchConfig()
	cfg.Pool = pool
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.MBps["Linux"], "linux-MB/s")
	b.ReportMetric(last.MBps["McKernel"], "mckernel-MB/s")
	b.ReportMetric(last.MBps["McKernel+HFI1"], "hfi-MB/s")
}

// BenchmarkFig4PingPong runs the Figure 4 point on the shared pool.
// Compare against BenchmarkFig4PingPongSeq for the parallel-runner
// speedup on this machine.
func BenchmarkFig4PingPong(b *testing.B) { fig4Bench(b, benchPool) }

// BenchmarkFig4PingPongSeq is the sequential (-j 1) baseline.
func BenchmarkFig4PingPongSeq(b *testing.B) { fig4Bench(b, runner.New(1)) }

// appBench runs one mini-app scaling point and reports the relative
// performance metrics of Figures 5-7.
func appBench(b *testing.B, app *miniapps.App, nodes int) {
	b.Helper()
	cfg := benchConfig()
	var pts []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AppScaling(cfg, app, []int{nodes})
		if err != nil {
			b.Fatal(err)
		}
	}
	pt := pts[0]
	b.ReportMetric(100*pt.RelToLinux["McKernel"], "mckernel-%ofLinux")
	b.ReportMetric(100*pt.RelToLinux["McKernel+HFI1"], "hfi-%ofLinux")
	b.ReportMetric(pt.Elapsed["Linux"].Seconds()*1e3, "linux-ms")
}

// BenchmarkFig5aLAMMPS regenerates Figure 5a.
func BenchmarkFig5aLAMMPS(b *testing.B) { appBench(b, miniapps.LAMMPS(), 2) }

// BenchmarkFig5bNekbone regenerates Figure 5b.
func BenchmarkFig5bNekbone(b *testing.B) { appBench(b, miniapps.Nekbone(), 2) }

// BenchmarkFig6aUMT2013 regenerates Figure 6a (the offload collapse).
func BenchmarkFig6aUMT2013(b *testing.B) { appBench(b, miniapps.UMT2013(), 2) }

// BenchmarkFig6bHACC regenerates Figure 6b.
func BenchmarkFig6bHACC(b *testing.B) { appBench(b, miniapps.HACC(), 2) }

// BenchmarkFig7QBOX regenerates Figure 7 (starts at 4 nodes, as in the
// paper).
func BenchmarkFig7QBOX(b *testing.B) { appBench(b, miniapps.QBOX(), 4) }

// BenchmarkVerbsDataPath runs the RDMA registration-vs-data-path sweep
// at one message size and reports the registration latency per OS (the
// paper's control-path story) next to the OS-invariant WRITE latency.
func BenchmarkVerbsDataPath(b *testing.B) {
	var rows []experiments.VerbsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.VerbsSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(float64(r.RegLat["Linux"])/1e3, "linux-reg-µs")
	b.ReportMetric(float64(r.RegLat["McKernel"])/1e3, "mckernel-reg-µs")
	b.ReportMetric(float64(r.RegLat["McKernel+HFI1"])/1e3, "hfi-reg-µs")
	b.ReportMetric(float64(r.WriteLat["McKernel+HFI1"])/1e3, "write-µs")
}

// BenchmarkTable1Profile regenerates the Table 1 communication profile.
func BenchmarkTable1Profile(b *testing.B) {
	var profiles []experiments.AppProfile
	for i := 0; i < b.N; i++ {
		var err error
		profiles, err = experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline observation: McKernel spends far more time in MPI_Wait
	// than Linux on UMT2013.
	var linWait, mckWait time.Duration
	for _, p := range profiles {
		if p.App != "UMT2013" {
			continue
		}
		for _, e := range p.Top {
			if e.Call != "MPI_Wait" {
				continue
			}
			switch p.OS {
			case "Linux":
				linWait = e.Time
			case "McKernel":
				mckWait = e.Time
			}
		}
	}
	if linWait > 0 {
		b.ReportMetric(float64(mckWait)/float64(linWait), "umt-wait-inflation")
	}
}

// BenchmarkFig8SyscallUMT regenerates the Figure 8 kernel profile.
func BenchmarkFig8SyscallUMT(b *testing.B) { breakdownBench(b, "UMT2013") }

// BenchmarkFig9SyscallQBOX regenerates the Figure 9 kernel profile.
func BenchmarkFig9SyscallQBOX(b *testing.B) { breakdownBench(b, "QBOX") }

func breakdownBench(b *testing.B, app string) {
	b.Helper()
	var orig, pico experiments.Breakdown
	for i := 0; i < b.N; i++ {
		var err error
		orig, pico, err = experiments.SyscallBreakdown(benchConfig(), app)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*float64(pico.KernelTime)/float64(orig.KernelTime), "hfi-kerneltime-%oforig")
}

// BenchmarkReliabilityLossy runs one lossy (2% drop) reliability cell
// set and reports the recovery cost next to the delivered goodput.
func BenchmarkReliabilityLossy(b *testing.B) {
	var rows []experiments.ReliabilityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Reliability(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.Goodput["McKernel+HFI1"], "hfi-MB/s")
	b.ReportMetric(float64(r.Retransmits["McKernel+HFI1"]), "hfi-retransmits")
}

// BenchmarkFailover runs the dual-rail live-failover cell set (all
// three OS configurations, rail 0 down mid-stream) and reports the
// blackout window the health machine's detection and rail switch cost.
func BenchmarkFailover(b *testing.B) {
	var rows []experiments.FailoverRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Failover(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.OS == "McKernel+HFI1" {
			b.ReportMetric(float64(r.Blackout)/1e3, "hfi-blackout-µs")
			b.ReportMetric(r.PostMBps, "hfi-post-MB/s")
		}
	}
}

// BenchmarkTenancy runs the multi-tenant interference sweep (all three
// OS configurations × solo/packed/spread/incast scenarios on the
// congestion-controlled fabric) and reports the noisy-neighbor p99
// inflation a packed placement costs the victim, plus the bulk
// neighbor's goodput under AIMD backoff.
func BenchmarkTenancy(b *testing.B) {
	var rows []experiments.TenancyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Tenancy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	var solo, packed experiments.TenancyRow
	for _, r := range rows {
		if r.OS != "McKernel+HFI1" {
			continue
		}
		switch r.Scenario {
		case "solo":
			solo = r
		case "packed":
			packed = r
		}
	}
	b.ReportMetric(float64(packed.VictimP99-solo.VictimP99)/1e3, "hfi-p99-inflation-µs")
	b.ReportMetric(packed.BulkMBps, "hfi-bulk-MB/s")
}

// BenchmarkSharded runs one UMT2013 point on the sharded engine end to
// end — partitioned cluster build, conservative window loop,
// cross-shard packet delivery and barrier rendezvous. Its
// bench_budget.json ceiling keeps the sharded fast path
// allocation-clean: a per-window or per-cross-event allocation
// (thousands of each per run) trips the gate immediately.
func BenchmarkSharded(b *testing.B) {
	app, _ := miniapps.ByName("UMT2013")
	var windows, cross uint64
	for i := 0; i < b.N; i++ {
		cl, err := cluster.New(cluster.Config{Nodes: 16, OS: cluster.OSMcKernelHFI,
			Params: model.Default(), Seed: 1, Synthetic: true, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mpi.RunJob(cl, 4, func(c *mpi.Comm) error { return app.Body(c, app) }); err != nil {
			b.Fatal(err)
		}
		windows, cross = cl.Set.Windows, cl.Set.CrossEvents
	}
	b.ReportMetric(float64(windows), "windows")
	b.ReportMetric(float64(cross), "cross-events")
}

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md §4).
// ---------------------------------------------------------------------

// BenchmarkAblationCoalescing compares the PicoDriver with and without
// the §3.4 SDMA request coalescing on a 4 MB transfer.
func BenchmarkAblationCoalescing(b *testing.B) {
	run := func(coalesce bool) time.Duration {
		cl, err := cluster.New(cluster.Config{
			Nodes: 2, OS: cluster.OSMcKernelHFI, Params: model.Default(), Seed: 1, Synthetic: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range cl.Nodes {
			n.Pico.Coalesce = coalesce
		}
		res, err := mpi.RunJob(cl, 1, func(c *mpi.Comm) error {
			buf, err := c.MmapAnon(4 << 20)
			if err != nil {
				return err
			}
			peer := 1 - c.Rank
			rr, err := c.Irecv(peer, 1, buf, 4<<20)
			if err != nil {
				return err
			}
			if err := c.Send(peer, 1, buf, 4<<20); err != nil {
				return err
			}
			return c.Wait(rr)
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Elapsed
	}
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		on = run(true)
		off = run(false)
	}
	b.ReportMetric(off.Seconds()/on.Seconds(), "coalescing-speedup")
}

// BenchmarkAblationLinuxCPUs varies the number of OS cores: the offload
// collapse is a function of the rank-to-Linux-CPU ratio (§4.3).
func BenchmarkAblationLinuxCPUs(b *testing.B) {
	run := func(osCPUs int) time.Duration {
		spec := ihk.DefaultNodeSpec()
		spec.LinuxCPUs = osCPUs
		cl, err := cluster.New(cluster.Config{
			Nodes: 2, OS: cluster.OSMcKernel, Params: model.Default(),
			Spec: spec, Seed: 1, Synthetic: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		app := miniapps.UMT2013()
		app.Steps = 1
		res, err := mpi.RunJob(cl, 16, func(c *mpi.Comm) error { return app.Body(c, app) })
		if err != nil {
			b.Fatal(err)
		}
		return res.Elapsed
	}
	var few, many time.Duration
	for i := 0; i < b.N; i++ {
		few = run(2)
		many = run(16)
	}
	b.ReportMetric(few.Seconds()/many.Seconds(), "2cpu-vs-16cpu-slowdown")
}

// BenchmarkAblationBackingPolicy measures the page-table-walk output the
// two anonymous-memory policies hand the SDMA path for a 4 MB buffer:
// scattered 4K pages (Linux) versus contiguous large-page runs
// (McKernel) — the raw material of the §3.4 optimization.
func BenchmarkAblationBackingPolicy(b *testing.B) {
	pm, err := mem.NewPhysMem(
		mem.Region{Base: 0, Size: 256 << 20, Kind: mem.DDR4, Owner: "k"},
	)
	if err != nil {
		b.Fatal(err)
	}
	var scatterExts, contigExts int
	for i := 0; i < b.N; i++ {
		lin := uproc.NewProcess("lin", pm.Partition("k"), uproc.BackingScattered4K)
		mck := uproc.NewProcess("mck", pm.Partition("k"), uproc.BackingContigLarge)
		lva, err := lin.MmapAnon(4 << 20)
		if err != nil {
			b.Fatal(err)
		}
		mva, err := mck.MmapAnon(4 << 20)
		if err != nil {
			b.Fatal(err)
		}
		le, err := lin.PT.WalkExtents(lva, 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		me, err := mck.PT.WalkExtents(mva, 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		scatterExts, contigExts = len(le), len(me)
		if err := lin.Munmap(lva); err != nil {
			b.Fatal(err)
		}
		if err := mck.Munmap(mva); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(scatterExts), "scattered-extents")
	b.ReportMetric(float64(contigExts), "contig-extents")
}

// BenchmarkAblationMunmapOptimized implements the paper's immediate
// future work — fixing McKernel's munmap path — and measures how much of
// QBOX's remaining +HFI kernel time it recovers (Figure 9 showed munmap
// dominating).
func BenchmarkAblationMunmapOptimized(b *testing.B) {
	run := func(munmapPerPage time.Duration) time.Duration {
		pr := model.Default()
		pr.McKMunmapPerPage = munmapPerPage
		cl, err := cluster.New(cluster.Config{
			Nodes: 2, OS: cluster.OSMcKernelHFI, Params: pr, Seed: 1, Synthetic: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		app := miniapps.QBOX()
		res, err := mpi.RunJob(cl, 8, func(c *mpi.Comm) error { return app.Body(c, app) })
		if err != nil {
			b.Fatal(err)
		}
		return res.Elapsed
	}
	var current, optimized time.Duration
	for i := 0; i < b.N; i++ {
		current = run(model.Default().McKMunmapPerPage)
		optimized = run(20 * time.Nanosecond)
	}
	b.ReportMetric(current.Seconds()/optimized.Seconds(), "munmap-fix-speedup")
}

// BenchmarkExtensionMLXRegMR measures the paper's §6 future work as
// implemented here: InfiniBand memory registration ported to the LWK
// (core.MLXPico) versus the offloaded path, for a 1 MB region.
func BenchmarkExtensionMLXRegMR(b *testing.B) {
	run := func(fast bool) time.Duration {
		cl, err := cluster.New(cluster.Config{
			Nodes: 1, OS: cluster.OSMcKernelHFI, Params: model.Default(), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		// The cluster registers the mlx driver and attaches its fast path
		// itself on this configuration; the offloaded leg detaches it.
		n := cl.Nodes[0]
		if !fast {
			n.Mck.ReplaceFastPath(mlx.DevicePath, nil)
		}
		var lat time.Duration
		proc := n.Mck.NewProcess("verbs")
		cl.E.Go("app", func(p *sim.Proc) {
			ctx := &kernel.Ctx{P: p, CPU: n.AppCPUs()[0]}
			f, err := n.Mck.Open(ctx, proc, mlx.DevicePath)
			if err != nil {
				b.Error(err)
				return
			}
			buf, err := n.Mck.MmapAnon(ctx, proc, 1<<20)
			if err != nil {
				b.Error(err)
				return
			}
			argVA, err := n.Mck.MmapAnon(ctx, proc, 4096)
			if err != nil {
				b.Error(err)
				return
			}
			if err := mlx.EncodeMRInfo(proc, argVA, &mlx.MRInfo{VAddr: buf, Length: 1 << 20}); err != nil {
				b.Error(err)
				return
			}
			start := p.Now()
			if _, err := n.Mck.Ioctl(ctx, f, mlx.CmdRegMR, argVA); err != nil {
				b.Error(err)
				return
			}
			lat = p.Now() - start
		})
		if err := cl.E.Run(0); err != nil {
			b.Fatal(err)
		}
		return lat
	}
	var off, fast time.Duration
	for i := 0; i < b.N; i++ {
		off = run(false)
		fast = run(true)
	}
	b.ReportMetric(off.Seconds()*1e6, "offloaded-us")
	b.ReportMetric(fast.Seconds()*1e6, "fastpath-us")
	b.ReportMetric(off.Seconds()/fast.Seconds(), "regmr-speedup")
}

// ---------------------------------------------------------------------
// Micro benches of the hot primitives.
// ---------------------------------------------------------------------

// BenchmarkSDMARequestBuilder measures the pure descriptor-splitting
// logic both drivers share.
func BenchmarkSDMARequestBuilder(b *testing.B) {
	exts := []mem.Extent{{Addr: 0x100000, Len: 4 << 20}}
	tids := []hfi.TIDPair{}
	off := uint64(0)
	for off < 4<<20 {
		tids = append(tids, hfi.TIDPair{Idx: uint64(len(tids)), Len: 256 << 10})
		off += 256 << 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hfi.BuildExpectedRequests(exts, 10240, tids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDWARFExtract measures the §3.2 extraction path.
func BenchmarkDWARFExtract(b *testing.B) {
	blob, err := hfi.BuildDWARFBlob(hfi.BuildRegistry(hfi.DriverVersion))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExtractLayouts(blob, "bench", core.HFIWants); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageTableWalk measures the fast path's extent gathering over
// a large-page-backed 4 MB mapping.
func BenchmarkPageTableWalk(b *testing.B) {
	pt := pagetable.New()
	if err := pt.Map(pagetable.Size2M*16, 0x40000000, 4<<20, pagetable.Writable); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pt.WalkExtents(pagetable.Size2M*16, 4<<20); err != nil {
			b.Fatal(err)
		}
	}
}
