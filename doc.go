// Package repro is a from-scratch Go reproduction of "PicoDriver:
// Fast-path Device Drivers for Multi-kernel Operating Systems" (Gerofi,
// Santogidis, Martinet, Ishikawa — HPDC 2018).
//
// The repository implements the paper's entire stack as a deterministic
// discrete-event simulation with real data paths: an IHK/McKernel-style
// multi-kernel OS (resource partitioning, IKC system call delegation,
// proxy processes), a Linux kernel substrate (VFS, get_user_pages, a
// worker pool of OS cores), an OmniPath-style HFI NIC (SDMA engines,
// RcvArray/TID expected receive, eager rings), the unmodified Linux HFI
// driver, the PicoDriver framework and its HFI instance, a PSM2-style
// user-space messaging library, a small MPI runtime, and skeletons of
// the five CORAL mini-applications the paper evaluates.
//
// Layout:
//
//	internal/core         the PicoDriver framework + HFI PicoDriver (§3)
//	internal/{sim,mem,pagetable,kmem,kstruct,dwarfx,vas,kernel}
//	                      simulation + memory + debug-info substrates
//	internal/{ihk,linux,mckernel}
//	                      the multi-kernel operating systems (§2.1)
//	internal/{hfi,fabric} the NIC, the Linux HFI driver, the wire (§2.2)
//	internal/{psm,mpi}    the user-space communication stack (§2.2.1)
//	internal/{cluster,miniapps,experiments,report,model,trace}
//	                      evaluation machinery (§4)
//	cmd/*                 pingpong, miniapp, profile, experiments,
//	                      dwarf-extract-struct
//	examples/*            quickstart, halo3d, splitdriver, structextract
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation at a reduced default scale; cmd/experiments
// -scale paper runs the full sweeps. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro
