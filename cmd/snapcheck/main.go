// Command snapcheck drives the checkpoint/restore smoke gate over one
// Figure 4 ping-pong cell. Three modes:
//
//	snapcheck -mode straight [-trace FILE]        run the cell start-to-finish
//	snapcheck -mode checkpoint -snap FILE         stop at half the cell's
//	                                              virtual time and write the
//	                                              full simulator snapshot
//	snapcheck -mode resume -snap FILE [-trace FILE]
//	                                              rebuild the cell, restore
//	                                              through the snapshot
//	                                              (byte-verified) and finish
//
// straight and resume print the cell's statistics on stdout and can
// serialize the run's Chrome trace; a correct implementation makes
// both outputs byte-identical, which is what `make snapshot-smoke`
// asserts.
//
// Run setup (-j, -shards, -loss, -trace) comes from the shared
// cliconf block; with -shards N>1 the checkpoint mode exercises the
// sharded engine's versioned snapshot sections.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliconf"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "straight", "straight, checkpoint or resume")
	snap := flag.String("snap", "", "snapshot file (written by checkpoint, read by resume)")
	osFlag := flag.String("os", "McKernel+HFI1", "OS configuration: Linux, McKernel or McKernel+HFI1")
	size := flag.Uint64("size", 1<<20, "ping-pong message size in bytes")
	shared := cliconf.New(cliconf.WithTrace)
	flag.Parse()
	tracePath := shared.Trace

	osType, err := cliconf.ParseOS(*osFlag)
	if err != nil {
		fatal(err)
	}
	cfg := shared.Config(experiments.SmallScale())

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder()
	}
	emit := func(cell experiments.PingPongCell) {
		fmt.Printf("fig4 %dB %s: %s\n", *size, osType, cell)
		if rec != nil {
			if err := os.WriteFile(*tracePath, rec.ChromeTraceJSON(), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	switch *mode {
	case "straight":
		cell, err := experiments.PingPongStraight(cfg, osType, *size, rec)
		if err != nil {
			fatal(err)
		}
		emit(cell)
	case "checkpoint":
		if *snap == "" {
			fatal(fmt.Errorf("-mode checkpoint requires -snap FILE"))
		}
		f, err := os.Create(*snap)
		if err != nil {
			fatal(err)
		}
		at, err := experiments.PingPongCheckpoint(cfg, osType, *size, f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapcheck: %s checkpointed at %v\n", *snap, at)
	case "resume":
		if *snap == "" {
			fatal(fmt.Errorf("-mode resume requires -snap FILE"))
		}
		img, err := os.ReadFile(*snap)
		if err != nil {
			fatal(err)
		}
		cell, err := experiments.PingPongResume(cfg, osType, *size, img, rec)
		if err != nil {
			fatal(err)
		}
		emit(cell)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snapcheck:", err)
	os.Exit(1)
}
