// Command profile reproduces the paper's profiling artifacts: the MPI
// communication profile of Table 1 and the kernel-level system call
// breakdowns of Figures 8 and 9.
//
// Usage:
//
//	profile [-nodes 8] [-rpn 16] [-what table1,fig8,fig9]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	nodesFlag := flag.Int("nodes", 8, "compute nodes (the paper profiles on 8)")
	rpnFlag := flag.Int("rpn", 16, "ranks per node")
	whatFlag := flag.String("what", "table1,fig8,fig9", "artifacts to produce")
	flag.Parse()

	sc := experiments.SmallScale()
	sc.ProfileNodes = *nodesFlag
	sc.ProfileRPN = *rpnFlag
	want := map[string]bool{}
	for _, w := range strings.Split(*whatFlag, ",") {
		want[strings.TrimSpace(w)] = true
	}

	if want["table1"] {
		profiles, err := experiments.Table1(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table1(profiles))
	}
	for id, app := range map[string]string{"fig8": "UMT2013", "fig9": "QBOX"} {
		if !want[id] {
			continue
		}
		orig, pico, err := experiments.SyscallBreakdown(app, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.BreakdownTable(orig, pico))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
