// Command profile reproduces the paper's profiling artifacts: the MPI
// communication profile of Table 1 and the kernel-level system call
// breakdowns of Figures 8 and 9.
//
// Usage:
//
//	profile [-nodes 8] [-rpn 16] [-what table1,fig8,fig9] [-j N] [-shards N]
//	        [-trace out.json] [-trace-app UMT2013] [-trace-os mckernel+hfi]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The shared -j/-shards/-loss/-trace block comes from internal/cliconf,
// the same run-setup path as every other simulator binary.
//
// The -cpuprofile/-memprofile flags wrap the whole run in runtime/pprof
// collection so simulator hot paths can be inspected with standard
// tooling (`go tool pprof`); see EXPERIMENTS.md "Profiling the
// simulator itself".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/cliconf"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	nodesFlag := flag.Int("nodes", 8, "compute nodes (the paper profiles on 8)")
	rpnFlag := flag.Int("rpn", 16, "ranks per node")
	whatFlag := flag.String("what", "table1,fig8,fig9", "artifacts to produce")
	shared := cliconf.New(cliconf.WithTrace)
	traceAppFlag := flag.String("trace-app", "UMT2013", "mini-app for the traced run")
	traceOSFlag := flag.String("trace-os", "mckernel+hfi", "OS for the traced run: linux, mckernel, mckernel+hfi")
	cpuProfileFlag := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
	memProfileFlag := flag.String("memprofile", "", "write a runtime/pprof heap (allocs) profile at exit to this file")
	flag.Parse()

	if *cpuProfileFlag != "" {
		f, err := os.Create(*cpuProfileFlag)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfileFlag != "" {
		defer func() {
			f, err := os.Create(*memProfileFlag)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live heap so the snapshot reflects retained memory
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	sc := experiments.SmallScale()
	sc.ProfileNodes = *nodesFlag
	sc.ProfileRPN = *rpnFlag
	cfg := shared.Config(sc)
	traceFlag := shared.Trace
	want := map[string]bool{}
	for _, w := range strings.Split(*whatFlag, ",") {
		want[strings.TrimSpace(w)] = true
	}

	if want["table1"] {
		profiles, err := experiments.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table1(profiles))
	}
	for id, app := range map[string]string{"fig8": "UMT2013", "fig9": "QBOX"} {
		if !want[id] {
			continue
		}
		orig, pico, err := experiments.SyscallBreakdown(cfg, app)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.BreakdownTable(orig, pico))
	}

	if *traceFlag != "" {
		os_, err := cliconf.ParseOS(*traceOSFlag)
		if err != nil {
			fatal(err)
		}
		rec, res, err := experiments.TracedRun(cfg, *traceAppFlag, *nodesFlag, *rpnFlag, os_)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*traceFlag)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %s %s nodes=%d rpn=%d elapsed=%v spans=%d -> %s\n",
			*traceAppFlag, *traceOSFlag, *nodesFlag, *rpnFlag,
			res.Elapsed, rec.SpanCount(), *traceFlag)
		fmt.Println(report.LatencyTable(rec))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
