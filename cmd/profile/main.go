// Command profile reproduces the paper's profiling artifacts: the MPI
// communication profile of Table 1 and the kernel-level system call
// breakdowns of Figures 8 and 9.
//
// Usage:
//
//	profile [-nodes 8] [-rpn 16] [-what table1,fig8,fig9] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/runner"
)

func main() {
	nodesFlag := flag.Int("nodes", 8, "compute nodes (the paper profiles on 8)")
	rpnFlag := flag.Int("rpn", 16, "ranks per node")
	whatFlag := flag.String("what", "table1,fig8,fig9", "artifacts to produce")
	jFlag := flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	flag.Parse()
	pool := runner.New(*jFlag)

	sc := experiments.SmallScale()
	sc.ProfileNodes = *nodesFlag
	sc.ProfileRPN = *rpnFlag
	want := map[string]bool{}
	for _, w := range strings.Split(*whatFlag, ",") {
		want[strings.TrimSpace(w)] = true
	}

	if want["table1"] {
		profiles, err := experiments.Table1(pool, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Table1(profiles))
	}
	for id, app := range map[string]string{"fig8": "UMT2013", "fig9": "QBOX"} {
		if !want[id] {
			continue
		}
		orig, pico, err := experiments.SyscallBreakdown(pool, app, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.BreakdownTable(orig, pico))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
