// Command simtest soaks the property-based simulation harness: many
// randomized cells per OS configuration run in parallel, each through
// the full determinism-and-snapshot-equivalence check, and every
// failure prints the workload summary plus a one-line single-seed
// repro command. With -snapdir, each failing cell additionally emits a
// simulator snapshot captured shortly before the failure, plus the
// `go test -restore=<file>` command that replays just the final slice
// under tracing. The exit status is non-zero if any cell fails.
//
// Usage:
//
//	go run ./cmd/simtest -seed 1 -cells 100 -j 8 -snapdir .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/simtest"
)

// snapFileName flattens a cell name ("Linux/!tid/0") into a filename.
func snapFileName(seed int64, cell string) string {
	r := strings.NewReplacer("/", "-", "!", "", "+", "")
	return fmt.Sprintf("simtest-fail-s%d-%s.snap", seed, r.Replace(cell))
}

func main() {
	seed := flag.Int64("seed", 1, "base seed")
	cells := flag.Int("cells", 50, "cells per OS configuration")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print passing cells too")
	snapdir := flag.String("snapdir", "", "write a pre-failure snapshot per failing cell into this directory")
	flag.Parse()

	type outcome struct {
		cell   string
		digest string
		err    error
	}
	var work []runner.Job[outcome]
	for _, osType := range cluster.AllOSTypes {
		extra := (*cells + 2) / 3 // one-sided, lossy, failover, tenancy and shard cells each
		for i := 0; i < *cells+5*extra; i++ {
			cell := fmt.Sprintf("%s/%d", osType, i)
			if i >= *cells+4*extra {
				cell = fmt.Sprintf("%s/shard/%d", osType, i-*cells-4*extra)
			} else if i >= *cells+3*extra {
				cell = fmt.Sprintf("%s/tenancy/%d", osType, i-*cells-3*extra)
			} else if i >= *cells+2*extra {
				cell = fmt.Sprintf("%s/failover/%d", osType, i-*cells-2*extra)
			} else if i >= *cells+extra {
				cell = fmt.Sprintf("%s/lossy/%d", osType, i-*cells-extra)
			} else if i >= *cells {
				cell = fmt.Sprintf("%s/rma/%d", osType, i-*cells)
			}
			work = append(work, runner.Job[outcome]{
				ID: cell,
				Fn: func() (outcome, error) {
					rep, err := simtest.CheckCell(*seed, cell)
					o := outcome{cell: cell, err: err}
					if rep != nil {
						o.digest = rep.Digest
					}
					return o, nil
				},
			})
		}
	}
	results, err := runner.Run(runner.New(*jobs), work)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simtest: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	for _, o := range results {
		if o.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %s\n%v\n", o.cell, o.err)
			if *snapdir != "" {
				if snap, at, serr := simtest.FailureSnapshot(*seed, o.cell); serr != nil {
					fmt.Fprintf(os.Stderr, "(no failure snapshot: %v)\n", serr)
				} else {
					file := filepath.Join(*snapdir, snapFileName(*seed, o.cell))
					if werr := os.WriteFile(file, snap, 0o644); werr != nil {
						fmt.Fprintf(os.Stderr, "(snapshot not written: %v)\n", werr)
					} else {
						fmt.Fprintf(os.Stderr, "snapshot: %s (state at %v, just before the failure)\nreplay:   %s\n",
							file, at, simtest.ReproRestore(*seed, o.cell, file))
					}
				}
			}
			fmt.Fprintln(os.Stderr)
		} else if *verbose {
			fmt.Printf("ok   %s digest=%s\n", o.cell, o.digest)
		}
	}
	fmt.Printf("simtest: %d cells, %d failed (seed %d)\n", len(results), failed, *seed)
	if failed > 0 {
		os.Exit(1)
	}
}
