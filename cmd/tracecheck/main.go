// Command tracecheck validates a Chrome trace-event JSON file produced
// by the simulator's span recorder: the file must parse, hold a
// non-empty traceEvents array, and every event must carry the fields
// Perfetto requires (name, ph, pid, ts for X/M phases, dur for X).
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   json.RawMessage `json:"ts"`
	Dur  json.RawMessage `json:"dur"`
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	var spans int
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("event %d: missing name/ph/pid/tid", i)
		}
		switch ev.Ph {
		case "X":
			if len(ev.Ts) == 0 || len(ev.Dur) == 0 {
				return fmt.Errorf("event %d (%s): X event without ts/dur", i, ev.Name)
			}
			if ev.Cat == "" {
				return fmt.Errorf("event %d (%s): span without cat", i, ev.Name)
			}
			spans++
		case "M":
			// Metadata events only need name/pid/tid.
		default:
			return fmt.Errorf("event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("no span (ph=X) events")
	}
	fmt.Printf("%s: ok (%d events, %d spans)\n", path, len(tf.TraceEvents), spans)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
