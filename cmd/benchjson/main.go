// Command benchjson converts `go test -bench` output on stdin into a
// JSON perf record, echoing the raw output to stdout so it still shows
// in the terminal. `make bench` uses it to write BENCH_seed.json, the
// baseline for tracking the repository's performance trajectory across
// changes.
//
// Usage:
//
//	go test -bench . -benchtime 1x . | benchjson -out BENCH_seed.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file-level JSON document.
type Record struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkFig4PingPong-8  2  551146348 ns/op  11124 hfi-MB/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	outFlag := flag.String("out", "BENCH_seed.json", "JSON output path")
	flag.Parse()

	rec := Record{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		// The tail alternates "value unit" pairs: custom b.ReportMetric
		// metrics and -benchmem columns.
		fields := strings.Fields(m[5])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rec.Benchmarks), *outFlag)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
