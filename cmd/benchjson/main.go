// Command benchjson converts `go test -bench` output on stdin into a
// JSON perf record, echoing the raw output to stdout so it still shows
// in the terminal. `make bench` uses it to write BENCH_pr6.json;
// BENCH_seed.json is the frozen baseline the perf trajectory is
// measured against.
//
// With -budget, it additionally enforces the checked-in allocs/op
// ceilings in bench_budget.json and exits non-zero when any benchmark
// regresses past its budget (`make bench-gate`).
//
// Usage:
//
//	go test -bench . -benchtime 3x -benchmem . | benchjson -out BENCH_pr6.json -budget bench_budget.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file-level JSON document.
type Record struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkFig4PingPong-8  2  551146348 ns/op  11124 hfi-MB/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// Budget is the checked-in per-benchmark resource ceiling file. Only
// allocs/op is gated: it is iteration-exact and machine-independent,
// unlike ns/op.
type Budget struct {
	Comment     string             `json:"comment,omitempty"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

func main() {
	outFlag := flag.String("out", "BENCH_pr6.json", "JSON output path")
	budgetFlag := flag.String("budget", "", "budget JSON; fail when any benchmark's allocs/op exceeds its ceiling")
	flag.Parse()

	rec := Record{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		// The tail alternates "value unit" pairs: custom b.ReportMetric
		// metrics and -benchmem columns.
		fields := strings.Fields(m[5])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rec.Benchmarks), *outFlag)

	if *budgetFlag != "" {
		if err := checkBudget(*budgetFlag, rec.Benchmarks); err != nil {
			fatal(err)
		}
	}
}

// checkBudget enforces the allocs/op ceilings. Every budgeted benchmark
// must be present in the run and under its ceiling; benchmarks without
// a budget entry are reported so new ones get budgeted.
func checkBudget(path string, benches []Benchmark) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var budget Budget
	if err := json.Unmarshal(data, &budget); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	var failures []string
	for name, limit := range budget.AllocsPerOp {
		b, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: budgeted but not run", name))
			continue
		}
		got, ok := b.Metrics["allocs/op"]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no allocs/op metric (run with -benchmem)", name))
			continue
		}
		if got > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds budget %.0f", name, got, limit))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s %.0f allocs/op within budget %.0f\n", name, got, limit)
	}
	for _, b := range benches {
		if _, ok := budget.AllocsPerOp[b.Name]; !ok {
			fmt.Fprintf(os.Stderr, "benchjson: note: %s has no allocs/op budget in %s\n", b.Name, path)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("budget violations:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
