// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes the rendered artifacts.
//
// Usage:
//
//	experiments [-scale small|paper] [-only fig4,fig5a,...] [-out DIR] [-j N]
//	            [-checkpoint FILE [-resume]]
//
// Experiment ids: fig4, fig5a, fig5b, fig6a, fig6b, fig7, table1, fig8,
// fig9, verbs, reliability, failover, tenancy, bigscale. With -out, each
// artifact is also written to DIR/<id>.txt. The bigscale id (the sharded
// engine's same-seed shard-count sweep) is expensive and only runs when
// named in -only.
//
// -j fans the independent simulation cells of each experiment out over N
// workers (default: GOMAXPROCS). Artifacts are byte-identical for any
// -j, including -j 1; only wall-clock changes. -shards partitions every
// cluster into N engine shards (default 1, the classic single-engine
// path); artifacts stay identical for any value, only wall-clock moves.
// The shared -j/-shards/-loss block comes from internal/cliconf, the
// same run-setup path as every other simulator binary.
//
// -checkpoint FILE records each finished experiment's artifacts in a
// resumable manifest; adding -resume emits already-recorded experiments
// from the manifest instead of re-running them, so an interrupted
// -scale paper run picks up where it stopped. The manifest pins the
// scale and seed: resuming under different parameters is refused.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliconf"
	"repro/internal/experiments"
	"repro/internal/miniapps"
	"repro/internal/report"
)

// experimentIDs lists every known id in output order. explicitOnly ids
// are skipped unless named in -only (too expensive for the default
// sweep).
var experimentIDs = []string{
	"fig4", "fig5a", "fig5b", "fig6a", "fig6b", "fig7", "table1", "fig8", "fig9",
	"verbs", "reliability", "failover", "tenancy", "bigscale",
}

var explicitOnly = map[string]bool{"bigscale": true}

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or paper")
	onlyFlag := flag.String("only", "", "comma-separated experiment ids (default: all)")
	outFlag := flag.String("out", "", "directory to write artifacts into")
	shared := cliconf.New()
	ckptFlag := flag.String("checkpoint", "", "record finished experiments in this resumable manifest")
	resumeFlag := flag.Bool("resume", false, "with -checkpoint: emit already-recorded experiments from the manifest")
	flag.Parse()
	if *resumeFlag && *ckptFlag == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint FILE")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "small":
		sc = experiments.SmallScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	known := map[string]bool{}
	for _, id := range experimentIDs {
		known[id] = true
	}
	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			id = strings.TrimSpace(id)
			if !known[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment id %q (known: %s)\n",
					id, strings.Join(experimentIDs, ", "))
				os.Exit(2)
			}
			want[id] = true
		}
	}
	selected := func(id string) bool {
		if explicitOnly[id] {
			return want[id]
		}
		return len(want) == 0 || want[id]
	}

	cfg := shared.Config(sc)
	fmt.Fprintf(os.Stderr, "experiments: scale=%s workers=%d shards=%d\n",
		sc.Name, cfg.Pool.Workers(), *shared.Shards)

	var ckpt *experiments.Checkpoint
	if *ckptFlag != "" {
		meta := fmt.Sprintf("scale=%s seed=%d", sc.Name, sc.Seed)
		var err error
		if ckpt, err = experiments.LoadCheckpoint(*ckptFlag, meta, *resumeFlag); err != nil {
			fatal(err)
		}
	}

	// A failed sweep job doesn't abort the whole run: the experiment is
	// named on stderr, the remaining experiments still execute, and the
	// process exits non-zero at the end.
	var failed []string
	fail := func(id string, err error) {
		failed = append(failed, id)
		fmt.Fprintf(os.Stderr, "experiments: %s FAILED: %v\n", id, err)
	}

	emit := func(id, content, csv string) {
		fmt.Printf("==== %s ====\n%s\n", id, content)
		if *outFlag != "" {
			if err := os.MkdirAll(*outFlag, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outFlag, id+".txt"), []byte(content), 0o644); err != nil {
				fatal(err)
			}
			if csv != "" {
				if err := os.WriteFile(filepath.Join(*outFlag, id+".csv"), []byte(csv), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}

	// do runs one experiment — or replays it from the resume manifest —
	// emits its artifacts, records them in the checkpoint, and reports
	// wall-clock on stderr (where the effect of -j is otherwise
	// invisible).
	do := func(id string, run func() (text, csv string, err error)) {
		if !selected(id) {
			return
		}
		if ckpt != nil && ckpt.Has(id) {
			text, csv := ckpt.Artifact(id)
			emit(id, text, csv)
			fmt.Fprintf(os.Stderr, "experiments: %-6s resumed from %s\n", id, *ckptFlag)
			return
		}
		start := time.Now()
		text, csv, err := run()
		if err != nil {
			fail(id, err)
			return
		}
		emit(id, text, csv)
		if ckpt != nil {
			if err := ckpt.Record(id, text, csv); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "experiments: %-6s %s\n", id, time.Since(start).Round(time.Millisecond))
	}

	do("fig4", func() (string, string, error) {
		rows, err := experiments.Fig4(cfg)
		if err != nil {
			return "", "", err
		}
		return report.Fig4Table(rows), report.Fig4CSV(rows), nil
	})

	scaling := []struct {
		id, title string
		app       *miniapps.App
		nodes     []int
	}{
		{"fig5a", "Figure 5a: LAMMPS", miniapps.LAMMPS(), sc.AppNodes},
		{"fig5b", "Figure 5b: Nekbone", miniapps.Nekbone(), sc.AppNodes},
		{"fig6a", "Figure 6a: UMT2013", miniapps.UMT2013(), sc.AppNodes},
		{"fig6b", "Figure 6b: HACC", miniapps.HACC(), sc.AppNodes},
		{"fig7", "Figure 7: QBOX", miniapps.QBOX(), sc.QBoxNodes},
	}
	for _, s := range scaling {
		s := s
		do(s.id, func() (string, string, error) {
			pts, err := experiments.AppScaling(cfg, s.app, s.nodes)
			if err != nil {
				return "", "", err
			}
			return report.ScalingTable(s.title, pts), report.ScalingCSV(pts), nil
		})
	}

	do("table1", func() (string, string, error) {
		profiles, err := experiments.Table1(cfg)
		if err != nil {
			return "", "", err
		}
		return report.Table1(profiles), report.Table1CSV(profiles), nil
	})

	for _, bd := range []struct{ id, app string }{
		{"fig8", "UMT2013"},
		{"fig9", "QBOX"},
	} {
		bd := bd
		do(bd.id, func() (string, string, error) {
			orig, pico, err := experiments.SyscallBreakdown(cfg, bd.app)
			if err != nil {
				return "", "", err
			}
			return report.BreakdownTable(orig, pico), report.BreakdownCSV(orig, pico), nil
		})
	}

	do("verbs", func() (string, string, error) {
		rows, err := experiments.VerbsSweep(cfg)
		if err != nil {
			return "", "", err
		}
		return report.VerbsTable(rows), report.VerbsCSV(rows), nil
	})

	do("reliability", func() (string, string, error) {
		rows, err := experiments.Reliability(cfg)
		if err != nil {
			return "", "", err
		}
		return report.ReliabilityTable(rows), report.ReliabilityCSV(rows), nil
	})

	do("failover", func() (string, string, error) {
		rows, err := experiments.Failover(cfg)
		if err != nil {
			return "", "", err
		}
		return report.FailoverTable(rows), report.FailoverCSV(rows), nil
	})

	do("tenancy", func() (string, string, error) {
		rows, err := experiments.Tenancy(cfg)
		if err != nil {
			return "", "", err
		}
		return report.TenancyTable(rows), report.TenancyCSV(rows), nil
	})

	do("bigscale", func() (string, string, error) {
		rows, err := experiments.Bigscale(cfg, "UMT2013",
			sc.BigscaleNodes, sc.BigscaleRPN, sc.BigscaleShards)
		if err != nil {
			return "", "", err
		}
		title := fmt.Sprintf("Sharded engine: UMT2013, %d nodes x %d ranks/node, one seed",
			sc.BigscaleNodes, sc.BigscaleRPN)
		return report.BigscaleTable(title, rows), report.BigscaleCSV(rows), nil
	})

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
