// Command miniapp runs one CORAL mini-application skeleton across a node
// sweep and reports runtime per OS configuration relative to Linux
// (Figures 5-7).
//
// Usage:
//
//	miniapp -app UMT2013 [-nodes 1,2,4,8] [-rpn 16] [-steps N] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/miniapps"
	"repro/internal/report"
)

func main() {
	appFlag := flag.String("app", "UMT2013", "application: LAMMPS, Nekbone, UMT2013, HACC, QBOX")
	nodesFlag := flag.String("nodes", "1,2,4,8", "node counts")
	rpnFlag := flag.Int("rpn", 16, "ranks per node (0 = app default)")
	stepsFlag := flag.Int("steps", 0, "override timestep count (0 = app default)")
	seedFlag := flag.Int64("seed", 1, "simulation seed")
	jFlag := flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	flag.Parse()

	app, err := miniapps.ByName(*appFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miniapp:", err)
		os.Exit(2)
	}
	if *stepsFlag > 0 {
		app.Steps = *stepsFlag
	}
	var nodes []int
	for _, part := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "miniapp: bad node count %q\n", part)
			os.Exit(2)
		}
		nodes = append(nodes, n)
	}
	sc := experiments.SmallScale()
	sc.RanksPerNode = *rpnFlag
	sc.Seed = *seedFlag
	pts, err := experiments.AppScaling(experiments.NewConfig(sc, *jFlag), app, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miniapp:", err)
		os.Exit(1)
	}
	fmt.Print(report.ScalingTable(app.Name+" weak scaling", pts))
	fmt.Println()
	fmt.Printf("%-7s %14s\n", "nodes", "Linux runtime")
	for _, p := range pts {
		fmt.Printf("%-7d %14v\n", p.Nodes, p.Elapsed["Linux"].Round(1000))
	}
}
