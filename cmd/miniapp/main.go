// Command miniapp runs one CORAL mini-application skeleton across a node
// sweep and reports runtime per OS configuration relative to Linux
// (Figures 5-7).
//
// Usage:
//
//	miniapp -app UMT2013 [-nodes 1,2,4,8] [-rpn 16] [-steps N] [-j N] [-shards N]
//
// The shared -j/-shards/-loss block comes from internal/cliconf, the
// same run-setup path as every other simulator binary.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliconf"
	"repro/internal/experiments"
	"repro/internal/miniapps"
	"repro/internal/report"
)

func main() {
	appFlag := flag.String("app", "UMT2013", "application: LAMMPS, Nekbone, UMT2013, HACC, QBOX")
	nodesFlag := flag.String("nodes", "1,2,4,8", "node counts")
	rpnFlag := flag.Int("rpn", 16, "ranks per node (0 = app default)")
	stepsFlag := flag.Int("steps", 0, "override timestep count (0 = app default)")
	seedFlag := flag.Int64("seed", 1, "simulation seed")
	shared := cliconf.New()
	flag.Parse()

	app, err := miniapps.ByName(*appFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miniapp:", err)
		os.Exit(2)
	}
	if *stepsFlag > 0 {
		app.Steps = *stepsFlag
	}
	nodes, err := cliconf.ParseInts(*nodesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miniapp:", err)
		os.Exit(2)
	}
	sc := experiments.SmallScale()
	sc.RanksPerNode = *rpnFlag
	sc.Seed = *seedFlag
	pts, err := experiments.AppScaling(shared.Config(sc), app, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miniapp:", err)
		os.Exit(1)
	}
	fmt.Print(report.ScalingTable(app.Name+" weak scaling", pts))
	fmt.Println()
	fmt.Printf("%-7s %14s\n", "nodes", "Linux runtime")
	for _, p := range pts {
		fmt.Printf("%-7d %14v\n", p.Nodes, p.Elapsed["Linux"].Round(1000))
	}
}
