// Command dwarf-extract-struct reproduces the paper's §3.2 tool: walk a
// module's DWARF debugging information, find a structure, and emit a C
// header containing only the requested fields — each padded to its exact
// offset inside an unnamed union whose size matches the whole structure
// (Listing 1 of the paper).
//
// Usage:
//
//	dwarf-extract-struct <debug-blob> <struct> <field> [field...]
//	dwarf-extract-struct -hfi <struct> <field> [field...]
//	dwarf-extract-struct -hfi -list
//
// The -hfi mode reads the debugging information of the bundled simulated
// HFI1 driver instead of a file, and -list enumerates its structures.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dwarfx"
	"repro/internal/hfi"
)

func main() {
	hfiFlag := flag.Bool("hfi", false, "use the bundled HFI1 driver debug info")
	listFlag := flag.Bool("list", false, "list structures in the debug info")
	flag.Parse()
	args := flag.Args()

	var blob []byte
	var err error
	if *hfiFlag {
		blob, err = hfi.BuildDWARFBlob(hfi.BuildRegistry(hfi.DriverVersion))
		if err != nil {
			fatal(err)
		}
	} else {
		if len(args) < 1 {
			usage()
		}
		blob, err = os.ReadFile(args[0])
		if err != nil {
			fatal(err)
		}
		args = args[1:]
	}

	root, err := dwarfx.Decode(blob)
	if err != nil {
		fatal(fmt.Errorf("parsing debug info: %w", err))
	}
	if *listFlag {
		fmt.Printf("producer: %s\n", dwarfx.Producer(root))
		for _, name := range dwarfx.StructNames(root) {
			fmt.Println(name)
		}
		return
	}
	if len(args) < 2 {
		usage()
	}
	structName, fields := args[0], args[1:]
	layout, err := dwarfx.ExtractStruct(root, structName, fields)
	if err != nil {
		fatal(err)
	}
	fmt.Print(dwarfx.GenerateCHeader(layout))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dwarf-extract-struct [-hfi] [-list] [<debug-blob>] <struct> <field>...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwarf-extract-struct:", err)
	os.Exit(1)
}
