// Command pingpong runs the Figure 4 microbenchmark: IMB-style ping-pong
// bandwidth between two nodes under the three OS configurations.
//
// Usage:
//
//	pingpong [-sizes 1K,64K,4M] [-reps N] [-j N] [-shards N] [-loss 0.02]
//	         [-trace out.json] [-failover] [-neighbor]
//
// The shared -j/-shards/-loss/-trace block comes from internal/cliconf,
// the same run-setup path as every other simulator binary.
//
// A nonzero -loss arms the fabric fault model: packets are dropped at
// the given probability and the PSM reliability layer recovers them,
// with every bounce verified byte-for-byte against a reference pattern.
// -neighbor runs the noisy-neighbor pair instead of the sweep: a traced
// pingpong victim beside a bulk SDMA stream on a congestion-controlled
// fabric, printing the victim's p50/p99 inflation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliconf"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	sizesFlag := flag.String("sizes", "1K,4K,16K,64K,256K,1M,4M", "message sizes")
	repsFlag := flag.Int("reps", 4, "timed repetitions per size")
	foFlag := flag.Bool("failover", false, "run the traced dual-rail failover cell (McKernel+HFI1) instead of the bandwidth sweep")
	nbFlag := flag.Bool("neighbor", false, "run the noisy-neighbor pair (McKernel+HFI1): traced pingpong victim beside a bulk SDMA stream, printing the victim's p50/p99 delta")
	shared := cliconf.New(cliconf.WithTrace)
	flag.Parse()

	sc := experiments.SmallScale()
	sc.PingPongReps = *repsFlag
	sizes, err := cliconf.ParseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(2)
	}
	sc.PingPongSizes = sizes
	cfg := shared.Config(sc)
	traceFlag := shared.Trace

	if *foFlag {
		row, rec, err := experiments.TracedFailover(cfg, cluster.OSMcKernelHFI)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pingpong:", err)
			os.Exit(1)
		}
		fmt.Print(report.FailoverTable([]experiments.FailoverRow{row}))
		if *traceFlag != "" {
			if err := writeTrace(rec, *traceFlag); err != nil {
				fmt.Fprintln(os.Stderr, "pingpong:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: dual-rail failover cell, %d spans -> %s\n",
				rec.SpanCount(), *traceFlag)
		}
		return
	}

	if *nbFlag {
		solo, packed, rec, err := experiments.NeighborDelta(cfg, cluster.OSMcKernelHFI)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pingpong:", err)
			os.Exit(1)
		}
		fmt.Print(report.TenancyTable([]experiments.TenancyRow{solo, packed}))
		fmt.Printf("victim delta: p50 %+v, p99 %+v (bulk neighbor at %.1f MB/s)\n",
			packed.VictimP50-solo.VictimP50, packed.VictimP99-solo.VictimP99, packed.BulkMBps)
		if *traceFlag != "" {
			if err := writeTrace(rec, *traceFlag); err != nil {
				fmt.Fprintln(os.Stderr, "pingpong:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: packed noisy-neighbor cell, %d spans -> %s\n",
				rec.SpanCount(), *traceFlag)
		}
		return
	}

	rows, err := experiments.Fig4(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(1)
	}
	fmt.Print(report.Fig4Table(rows))

	if *traceFlag != "" {
		rec, err := experiments.TracedPingPong(cfg, cluster.OSMcKernelHFI, 64<<10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pingpong:", err)
			os.Exit(1)
		}
		if err := writeTrace(rec, *traceFlag); err != nil {
			fmt.Fprintln(os.Stderr, "pingpong:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: 64KB McKernel+HFI1 ping-pong, %d spans -> %s\n",
			rec.SpanCount(), *traceFlag)
	}
}

// writeTrace serializes a recorder as Chrome trace JSON.
func writeTrace(rec *trace.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rec.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
